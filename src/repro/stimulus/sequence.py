"""Replay of a fixed input-vector sequence (functional traces)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_stimulus
from repro.stimulus.base import Stimulus


class SequenceStimulus(Stimulus):
    """Cycles deterministically through a recorded list of input vectors.

    Each vector is a sequence of 0/1 values, one per primary input.  When the
    recorded trace is exhausted it wraps around, which keeps long simulations
    well-defined while preserving the trace's short-range statistics.  The
    lane-packed output broadcasts consecutive trace vectors across lanes so
    multi-lane simulation still advances through the trace.
    """

    def __init__(self, vectors: Sequence[Sequence[int]]):
        vectors = [tuple(int(bit) & 1 for bit in vector) for vector in vectors]
        if not vectors:
            raise ValueError("SequenceStimulus requires at least one vector")
        lengths = {len(vector) for vector in vectors}
        if len(lengths) != 1:
            raise ValueError("all vectors must have the same length")
        super().__init__(num_inputs=lengths.pop())
        self.vectors = vectors
        self._position = 0

    def reset(self) -> None:
        self._position = 0

    def get_state(self):
        return self._position

    def set_state(self, state) -> None:
        self._position = int(state) % len(self.vectors)

    def next_bits(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        if self.num_inputs == 0:
            return np.zeros((0, width), dtype=np.uint8)
        bits = np.empty((self.num_inputs, width), dtype=np.uint8)
        for lane in range(width):
            vector = self.vectors[self._position]
            self._position = (self._position + 1) % len(self.vectors)
            bits[:, lane] = vector
        return bits

    def describe(self) -> str:
        return f"SequenceStimulus(trace_length={len(self.vectors)}, inputs={self.num_inputs})"


@register_stimulus("sequence")
def _build_sequence_stimulus(num_inputs: int, vectors: Sequence[Sequence[int]]) -> SequenceStimulus:
    """Registry factory: the vector width must match the circuit's input count."""
    stimulus = SequenceStimulus(vectors)
    if stimulus.num_inputs != num_inputs:
        raise ValueError(
            f"sequence vectors have {stimulus.num_inputs} bits but the circuit "
            f"has {num_inputs} primary inputs"
        )
    return stimulus
