"""Temporally and spatially correlated input streams.

The paper stresses that DIPE "does not make assumptions on input pattern
statistics" — correlated streams are handled by exactly the same machinery,
only the independence interval selected by the runs test grows when the
inputs themselves mix slowly.  These generators exist to exercise that claim
in the examples, tests and ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_stimulus
from repro.stimulus.base import Stimulus


@register_stimulus("lag-one-markov")
class LagOneMarkovStimulus(Stimulus):
    """Each input is an independent two-state Markov chain.

    The chain is parameterised by its stationary one-probability ``p`` and a
    lag-one autocorrelation coefficient ``rho`` in [0, 1).  The transition
    probabilities are chosen so that the stationary distribution is
    ``P(1) = p`` and ``corr(x_t, x_{t+1}) = rho``:

    * ``P(1 -> 1) = p + rho * (1 - p)``
    * ``P(0 -> 1) = p * (1 - rho)``

    ``rho = 0`` degenerates to :class:`~repro.stimulus.random_inputs.BernoulliStimulus`.
    """

    def __init__(
        self,
        num_inputs: int,
        probability: float | Sequence[float] = 0.5,
        correlation: float | Sequence[float] = 0.5,
    ):
        super().__init__(num_inputs)
        self.probability = self._broadcast(probability, "probability", 0.0, 1.0)
        self.correlation = self._broadcast(correlation, "correlation", 0.0, 0.999)
        self._state: np.ndarray | None = None  # shape (num_inputs, width)

    def _broadcast(self, value, name: str, low: float, high: float) -> np.ndarray:
        if isinstance(value, (int, float)):
            array = np.full(self.num_inputs, float(value))
        else:
            array = np.asarray(value, dtype=float)
            if array.shape != (self.num_inputs,):
                raise ValueError(f"expected {self.num_inputs} {name} values")
        if np.any(array < low) or np.any(array > high):
            raise ValueError(f"{name} values must lie in [{low}, {high}]")
        return array

    def reset(self) -> None:
        self._state = None

    def get_state(self):
        return None if self._state is None else self._state.copy()

    def set_state(self, state) -> None:
        self._state = None if state is None else np.asarray(state, dtype=np.uint8).copy()

    def next_bits(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        if self.num_inputs == 0:
            return np.zeros((0, width), dtype=np.uint8)
        if self._state is None or self._state.shape[1] != width:
            draws = rng.random((self.num_inputs, width))
            self._state = (draws < self.probability[:, None]).astype(np.uint8)
        else:
            p = self.probability[:, None]
            rho = self.correlation[:, None]
            stay_one = p + rho * (1.0 - p)
            go_one = p * (1.0 - rho)
            draws = rng.random((self.num_inputs, width))
            prob_one = np.where(self._state == 1, stay_one, go_one)
            self._state = (draws < prob_one).astype(np.uint8)
        return self._state

    def describe(self) -> str:
        return (
            f"LagOneMarkovStimulus(p={self.probability.mean():g}, "
            f"rho={self.correlation.mean():g}, inputs={self.num_inputs})"
        )


@register_stimulus("spatially-correlated")
class SpatiallyCorrelatedStimulus(Stimulus):
    """Inputs that share latent bits, inducing positive pairwise correlation.

    Each cycle a vector of ``num_groups`` independent latent bits is drawn;
    input *i* copies its group's latent bit with probability ``coupling`` and
    draws an independent Bernoulli(0.5) bit otherwise.  Inputs assigned to
    the same group are positively correlated with coefficient roughly
    ``coupling ** 2``; inputs in different groups remain independent.
    """

    def __init__(self, num_inputs: int, num_groups: int = 2, coupling: float = 0.8):
        super().__init__(num_inputs)
        if num_groups < 1:
            raise ValueError("num_groups must be at least 1")
        if not 0.0 <= coupling <= 1.0:
            raise ValueError("coupling must lie in [0, 1]")
        self.num_groups = num_groups
        self.coupling = coupling
        self.group_of_input = (
            np.arange(num_inputs) % num_groups if num_inputs else np.array([], dtype=int)
        )

    def next_bits(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        if self.num_inputs == 0:
            return np.zeros((0, width), dtype=np.uint8)
        latent = rng.integers(0, 2, size=(self.num_groups, width), dtype=np.uint8)
        private = rng.integers(0, 2, size=(self.num_inputs, width), dtype=np.uint8)
        use_latent = rng.random((self.num_inputs, width)) < self.coupling
        return np.where(use_latent, latent[self.group_of_input], private).astype(np.uint8)

    def describe(self) -> str:
        return (
            f"SpatiallyCorrelatedStimulus(groups={self.num_groups}, "
            f"coupling={self.coupling:g}, inputs={self.num_inputs})"
        )
