"""Independent (spatially and temporally uncorrelated) input streams."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_stimulus
from repro.stimulus.base import Stimulus


@register_stimulus("bernoulli")
class BernoulliStimulus(Stimulus):
    """Mutually independent inputs, each 1 with its own probability.

    This is the input model used in the paper's experiments with every
    probability equal to 0.5.

    Parameters
    ----------
    num_inputs:
        Number of primary inputs.
    probabilities:
        A single probability applied to every input, or one probability per
        input.  Each must lie in [0, 1].
    """

    def __init__(self, num_inputs: int, probabilities: float | Sequence[float] = 0.5):
        super().__init__(num_inputs)
        if isinstance(probabilities, (int, float)):
            probs = np.full(num_inputs, float(probabilities))
        else:
            probs = np.asarray(probabilities, dtype=float)
            if probs.shape != (num_inputs,):
                raise ValueError(f"expected {num_inputs} probabilities, got shape {probs.shape}")
        if np.any(probs < 0.0) or np.any(probs > 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        self.probabilities = probs

    def next_bits(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        if self.num_inputs == 0:
            return np.zeros((0, width), dtype=np.uint8)
        draws = rng.random((self.num_inputs, width))
        return (draws < self.probabilities[:, None]).astype(np.uint8)

    def next_bits_block(
        self, rng: np.random.Generator, width: int = 1, cycles: int = 1
    ) -> np.ndarray:
        """One vectorized draw for a whole block of cycles.

        ``Generator.random`` fills its output buffer from the bit stream in C
        order, so one ``(cycles, num_inputs, width)`` draw consumes exactly
        the variates of *cycles* successive :meth:`next_bits` calls — the
        block is bit-identical to the looped default (pinned by tests).
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if self.num_inputs == 0 or cycles == 0:
            return np.zeros((cycles, self.num_inputs, width), dtype=np.uint8)
        draws = rng.random((cycles, self.num_inputs, width))
        return (draws < self.probabilities[None, :, None]).astype(np.uint8)

    def describe(self) -> str:
        unique = np.unique(self.probabilities)
        if unique.size == 1:
            return f"BernoulliStimulus(p={unique[0]:g}, inputs={self.num_inputs})"
        return f"BernoulliStimulus(per-input p, inputs={self.num_inputs})"
