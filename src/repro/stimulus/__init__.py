"""Primary-input pattern generators.

The paper's experiments drive the primary inputs with mutually independent
signals of probability 0.5, but the technique itself "does not make
assumptions on input pattern statistics".  This package therefore provides
several generators with the same interface:

* :class:`~repro.stimulus.random_inputs.BernoulliStimulus` — independent
  inputs with per-input one-probabilities (the paper's setting with p = 0.5).
* :class:`~repro.stimulus.correlated_inputs.LagOneMarkovStimulus` — inputs
  with temporal correlation (each input is a two-state Markov chain).
* :class:`~repro.stimulus.correlated_inputs.SpatiallyCorrelatedStimulus` —
  inputs with pairwise spatial correlation induced by shared latent bits.
* :class:`~repro.stimulus.sequence.SequenceStimulus` — replay of a fixed
  vector sequence (e.g. a recorded functional trace).
"""

from repro.stimulus.base import (
    Stimulus,
    pack_bit_matrix,
    pack_bit_matrix_words,
    pack_lane_bits,
    unpack_lane_bits,
)
from repro.stimulus.correlated_inputs import LagOneMarkovStimulus, SpatiallyCorrelatedStimulus
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.stimulus.sequence import SequenceStimulus

__all__ = [
    "Stimulus",
    "pack_lane_bits",
    "unpack_lane_bits",
    "pack_bit_matrix",
    "pack_bit_matrix_words",
    "BernoulliStimulus",
    "LagOneMarkovStimulus",
    "SpatiallyCorrelatedStimulus",
    "SequenceStimulus",
]
