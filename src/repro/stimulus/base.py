"""Stimulus interface and lane-packing helpers.

A stimulus produces one input pattern per clock cycle.  To match the
bit-parallel simulator, patterns are *lane-packed*: the value returned for a
primary input is an integer whose bit *k* is the logic value applied in
simulation lane *k*.  Single-chain simulation simply uses ``width=1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def pack_lane_bits(bits: np.ndarray) -> int:
    """Pack a 1-D array of 0/1 values into an integer (bit *k* = ``bits[k]``)."""
    word = 0
    for lane, bit in enumerate(bits):
        if bit:
            word |= 1 << lane
    return word


def unpack_lane_bits(word: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_lane_bits`: expand *word* into a length-*width* array."""
    return np.array([(word >> lane) & 1 for lane in range(width)], dtype=np.uint8)


class Stimulus(ABC):
    """Base class for input-pattern generators.

    Subclasses may keep per-lane state (e.g. Markov chains); :meth:`reset`
    must return the generator to its initial condition so repeated estimation
    runs are statistically independent given independent RNG streams.
    """

    def __init__(self, num_inputs: int):
        if num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        self.num_inputs = num_inputs

    @abstractmethod
    def next_pattern(self, rng: np.random.Generator, width: int = 1) -> list[int]:
        """Return the next pattern: one lane-packed integer per primary input."""

    def reset(self) -> None:
        """Forget any internal state (default: stateless, nothing to do)."""

    def patterns(self, rng: np.random.Generator, cycles: int, width: int = 1) -> list[list[int]]:
        """Convenience: generate *cycles* consecutive patterns."""
        return [self.next_pattern(rng, width) for _ in range(cycles)]

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        return f"{type(self).__name__}(num_inputs={self.num_inputs})"
