"""Stimulus interface and lane-packing helpers.

A stimulus produces one input pattern per clock cycle.  To match the
bit-parallel simulators, patterns exist in three equivalent encodings:

* a **bit matrix** — a ``(num_inputs, width)`` uint8 array of 0/1 values,
  the natural output of the vectorized generators (:meth:`Stimulus.next_bits`);
* **lane-packed integers** — one Python integer per input whose bit *k* is
  the logic value applied in simulation lane *k*, consumed by the big-int
  simulator backend (:meth:`Stimulus.next_pattern`);
* **lane words** — a ``(num_inputs, num_words)`` uint64 array with 64 lanes
  per word, consumed directly by the numpy simulator backend and the
  multi-chain batch sampler (:meth:`Stimulus.next_pattern_words`).

All three draw exactly the same random variates for a given ``(rng, width)``,
so simulations are reproducible from one seed regardless of which simulator
backend consumes the stimulus.  Single-chain simulation simply uses
``width=1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.bitpack import bits_to_words, words_per_width


def pack_lane_bits(bits: np.ndarray) -> int:
    """Pack a 1-D array of 0/1 values into an integer (bit *k* = ``bits[k]``)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    return int.from_bytes(np.packbits(bits, bitorder="little").tobytes(), "little")


def unpack_lane_bits(word: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_lane_bits`: expand *word* into a length-*width* array."""
    num_bytes = (width + 7) // 8
    raw = np.frombuffer(word.to_bytes(num_bytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width].copy()


def pack_bit_matrix(bits: np.ndarray) -> list[int]:
    """Pack a ``(num_inputs, width)`` bit matrix into lane-packed integers."""
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    packed = np.packbits(bits, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def pack_bit_matrix_words(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(num_inputs, width)`` bit matrix into ``(num_inputs, num_words)`` uint64."""
    bits = np.asarray(bits, dtype=np.uint8)
    return np.ascontiguousarray(bits_to_words(bits, words_per_width(bits.shape[1])))


class Stimulus(ABC):
    """Base class for input-pattern generators.

    Subclasses implement :meth:`next_bits`, producing one bit matrix per
    clock cycle; the packed encodings are derived from it.  Subclasses may
    keep per-lane state (e.g. Markov chains); :meth:`reset` must return the
    generator to its initial condition so repeated estimation runs are
    statistically independent given independent RNG streams.
    """

    #: ``True`` for generators that deliberately correlate the simulation
    #: lanes (the variance-reduction stimuli in :mod:`repro.variance`).
    #: Estimators consult this flag to switch to sweep-grouped confidence
    #: intervals, because per-sample i.i.d. intervals are invalid for
    #: cross-lane-dependent draws.
    lanes_dependent: bool = False

    def __init__(self, num_inputs: int):
        if num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        self.num_inputs = num_inputs

    @abstractmethod
    def next_bits(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        """Return the next pattern as a ``(num_inputs, width)`` uint8 bit matrix."""

    def next_bits_block(
        self, rng: np.random.Generator, width: int = 1, cycles: int = 1
    ) -> np.ndarray:
        """Return the next *cycles* patterns as a ``(cycles, num_inputs, width)`` matrix.

        Must consume the RNG stream exactly like *cycles* successive
        :meth:`next_bits` calls (the property the sharded sampler and the
        equivalence tests rely on).  The default implementation simply loops;
        stateless generators override it with one vectorized draw.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if cycles == 0:
            return np.zeros((0, self.num_inputs, width), dtype=np.uint8)
        return np.stack([self.next_bits(rng, width) for _ in range(cycles)])

    def next_pattern(self, rng: np.random.Generator, width: int = 1) -> list[int]:
        """Return the next pattern: one lane-packed integer per primary input."""
        if self.num_inputs == 0:
            return []
        return pack_bit_matrix(self.next_bits(rng, width))

    def next_pattern_words(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        """Return the next pattern as a ``(num_inputs, num_words)`` uint64 word array."""
        return pack_bit_matrix_words(self.next_bits(rng, width))

    def reset(self) -> None:
        """Forget any internal state (default: stateless, nothing to do)."""

    def get_state(self):
        """Snapshot the generator's internal state for checkpointing.

        Stateless generators return ``None`` (the default); stateful
        subclasses must return a copy deep enough that further generation
        does not mutate the snapshot.
        """
        return None

    def set_state(self, state) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        if state is not None:
            raise ValueError(f"{type(self).__name__} is stateless; cannot restore {state!r}")

    def patterns(self, rng: np.random.Generator, cycles: int, width: int = 1) -> list[list[int]]:
        """Convenience: generate *cycles* consecutive patterns."""
        return [self.next_pattern(rng, width) for _ in range(cycles)]

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        return f"{type(self).__name__}(num_inputs={self.num_inputs})"
