"""repro — reproduction of "Statistical Estimation of Average Power Dissipation
in Sequential Circuits" (Yuan, Teng, Kang; DAC 1997).

The package implements DIPE, the paper's distribution-independent power
estimation flow, together with every substrate it needs: a gate-level netlist
model with an ISCAS89 ``.bench`` parser, zero-delay and event-driven logic
simulators, power and capacitance models, input-pattern generators, FSM /
Markov-chain analysis for ground truth, the runs test and independence
interval selection, three stopping criteria, baseline estimators, and
experiment harnesses regenerating the paper's Tables 1–2 and Figure 3.

Quickstart::

    from repro import build_circuit, estimate_average_power

    circuit = build_circuit("s298")
    estimate = estimate_average_power(circuit, rng=1)
    print(estimate.average_power_mw, estimate.independence_interval)

The job-oriented API in :mod:`repro.api` is the preferred entry surface::

    from repro import JobSpec, run_job

    result = run_job(JobSpec(circuit="s298", seed=1))
    print(result.estimate.average_power_mw)
"""

from repro.api.batch import BatchResult, BatchRunner, run_batch
from repro.api.checkpoint import RunCheckpoint
from repro.api.events import ProgressEvent
from repro.api.jobs import JobResult, JobSpec, StimulusSpec, run_job
from repro.api.registry import (
    register_estimator,
    register_stimulus,
    register_stopping_criterion,
)
from repro.circuits import CircuitProgram, build_circuit, list_circuits
from repro.core import (
    ConsecutiveCycleEstimator,
    DipeEstimator,
    EstimationConfig,
    FixedWarmupEstimator,
    PowerEstimate,
    PowerSampler,
    estimate_average_power,
    select_independence_interval,
)
from repro.netlist import Netlist, parse_bench, parse_bench_file, write_bench
from repro.power import CapacitanceModel, PowerModel, estimate_reference_power
from repro.simulation import CompiledCircuit, EventDrivenSimulator, ZeroDelaySimulator
from repro.stats import runs_test, runs_test_on_values
from repro.stimulus import (
    BernoulliStimulus,
    LagOneMarkovStimulus,
    SequenceStimulus,
    SpatiallyCorrelatedStimulus,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # job-oriented API
    "JobSpec",
    "StimulusSpec",
    "JobResult",
    "run_job",
    "BatchRunner",
    "BatchResult",
    "run_batch",
    "ProgressEvent",
    "RunCheckpoint",
    "register_estimator",
    "register_stimulus",
    "register_stopping_criterion",
    # circuits
    "build_circuit",
    "CircuitProgram",
    "list_circuits",
    # core estimators
    "DipeEstimator",
    "estimate_average_power",
    "EstimationConfig",
    "PowerEstimate",
    "PowerSampler",
    "select_independence_interval",
    "ConsecutiveCycleEstimator",
    "FixedWarmupEstimator",
    # netlist
    "Netlist",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    # power
    "PowerModel",
    "CapacitanceModel",
    "estimate_reference_power",
    # simulation
    "CompiledCircuit",
    "ZeroDelaySimulator",
    "EventDrivenSimulator",
    # statistics
    "runs_test",
    "runs_test_on_values",
    # stimulus
    "BernoulliStimulus",
    "LagOneMarkovStimulus",
    "SpatiallyCorrelatedStimulus",
    "SequenceStimulus",
]
