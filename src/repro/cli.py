"""Command-line interface for the DIPE reproduction.

The CLI is a thin veneer over the job-oriented API in :mod:`repro.api` —
every estimation verb builds a serializable :class:`~repro.api.JobSpec` and
executes it through :func:`~repro.api.run_job`:

* ``repro circuits`` — list the registered benchmark circuits and sizes.
* ``repro compile s5378`` — lower one circuit to its cached
  :class:`~repro.circuits.program.CircuitProgram` and print the program
  statistics (gates per level, cache key, delay-model tick schedules).
* ``repro estimate s298`` — run a registered estimator (DIPE by default) on
  one circuit, either a registered benchmark or a ``.bench`` file, with
  optional streaming progress (``--progress``).
* ``repro batch jobs.json --workers N`` — fan a JSON list of job specs
  across worker processes and write a results manifest.  Exits nonzero when
  any job in the batch errored (the manifest still records every job).
* ``repro serve --store runs/`` — run the estimation service: an HTTP server
  accepting JobSpec submissions, streaming progress over SSE, persisting
  results and checkpoints (see ``docs/service.md``).
* ``repro submit s298 --watch`` / ``repro watch <job-id>`` / ``repro jobs``
  — the matching client verbs: submit a spec to a running server, follow a
  job's event stream, list the server's jobs.
* ``repro shard-worker --connect HOST:PORT`` — join a distributed estimation
  run (one started with ``--shard-hosts``) as a remote TCP shard worker and
  serve sampling commands until released (see ``docs/distributed.md``).
* ``repro table1`` / ``table2`` / ``figure3`` — regenerate the paper's
  tables and figure with configurable budgets (``--workers`` shards the
  estimation jobs; results are identical for any worker count).

Every verb accepts ``--seed`` for reproducibility and ``--json`` for
machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Sequence

import numpy as np

from repro.api.batch import BatchRunner, load_jobs
from repro.api.jobs import JobSpec, StimulusSpec, run_job
from repro.api.registry import (
    delay_model_names,
    estimator_names,
    simulator_names,
    stimulus_names,
    stopping_criterion_names,
)
from repro.circuits.iscas89 import (
    SMALL_CIRCUIT_NAMES,
    TABLE_CIRCUIT_NAMES,
    circuit_summary,
    list_circuits,
)
from repro.core.config import EstimationConfig
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.power.reference import estimate_reference_power
from repro.utils.tables import TextTable


def _estimation_config(args: argparse.Namespace, num_workers: int = 1) -> EstimationConfig:
    return EstimationConfig(
        significance_level=args.alpha,
        max_relative_error=args.max_error,
        confidence=args.confidence,
        stopping_criterion=args.stopping,
        power_simulator=args.power_simulator,
        delay_model=args.delay_model,
        num_chains=args.chains,
        adaptive_chains=args.adaptive_chains,
        max_chains=args.max_chains,
        num_workers=num_workers,
        worker_hosts=getattr(args, "shard_hosts", None),
        worker_auth_token=getattr(args, "shard_token", None) or "",
        simulation_backend=args.backend,
    )


#: Registered stimulus kinds whose factory takes a ``probability`` keyword —
#: for these, ``--input-probability`` is forwarded into the spec's params.
_PROBABILITY_STIMULI = ("antithetic", "stratified", "sobol", "lag-one-markov")


def _stimulus_spec(args: argparse.Namespace) -> StimulusSpec:
    kind = getattr(args, "stimulus", "bernoulli")
    if kind == "bernoulli":
        return StimulusSpec.bernoulli(args.input_probability)
    if kind in _PROBABILITY_STIMULI:
        return StimulusSpec(kind=kind, params={"probability": args.input_probability})
    return StimulusSpec(kind=kind)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=0.20,
                        help="runs-test significance level (paper: 0.20)")
    parser.add_argument("--max-error", type=float, default=0.05,
                        help="maximum relative error of the estimate (paper: 0.05)")
    parser.add_argument("--confidence", type=float, default=0.99,
                        help="confidence of the estimate (paper: 0.99)")
    parser.add_argument("--stopping", choices=sorted(stopping_criterion_names()),
                        default="order-statistic", help="stopping criterion")
    parser.add_argument("--power-simulator", choices=sorted(simulator_names()),
                        default="zero-delay",
                        help="power engine for the sampled cycles "
                             "(any registered simulator name)")
    parser.add_argument("--delay-model", choices=sorted(delay_model_names()),
                        default="fanout",
                        help="gate delay model of the event-driven power engine "
                             "(ignored by zero-delay)")
    parser.add_argument("--chains", type=int, default=1,
                        help="independent Monte Carlo chains advanced per gate sweep "
                             "(>1 uses the vectorized multi-chain sampler; composes "
                             "with either power simulator)")
    parser.add_argument("--adaptive-chains", action="store_true",
                        help="let the sampler grow/shrink the chain ensemble between "
                             "batches from the stopping criterion's running accuracy")
    parser.add_argument("--max-chains", type=int, default=1024,
                        help="chain-count ceiling for --adaptive-chains")
    parser.add_argument("--backend", choices=("auto", "bigint", "numpy", "compiled"),
                        default="auto",
                        help="zero-delay simulator backend (auto picks by ensemble "
                             "width; compiled generates per-circuit C, falling back "
                             "to numpy without a compiler)")
    parser.add_argument("--stimulus", choices=sorted(stimulus_names()),
                        default="bernoulli",
                        help="input-pattern generator (any registered stimulus "
                             "name; the variance-reduction stimuli antithetic/"
                             "stratified/sobol need --chains > 1 to couple lanes)")
    parser.add_argument("--input-probability", type=float, default=0.5,
                        help="probability of 1 at every primary input (paper: 0.5); "
                             "forwarded to stimuli that accept a probability")
    parser.add_argument("--seed", type=int, default=2025, help="random seed")


def _add_shard_host_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shard-hosts", default=None, metavar="HOST:PORT",
                        help="listen address for remote TCP shard workers; the run "
                             "coordinates 'repro shard-worker --connect' processes "
                             "instead of spawning local ones (env: REPRO_SHARD_HOSTS; "
                             "results are identical for any topology)")
    parser.add_argument("--shard-token", default=None,
                        help="shared secret remote shard workers must present "
                             "(env: REPRO_SHARD_TOKEN)")


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2))


def _print_progress_event(event) -> None:
    print(json.dumps(event.to_dict()), file=sys.stderr)


# --------------------------------------------------------------------- verbs
def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.api.jobs import resolve_circuit
    from repro.circuits.program import CircuitProgram, program_cache_dir

    try:
        circuit = resolve_circuit(args.circuit)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    program = CircuitProgram.of(circuit)
    if args.optimize:
        original_gates = program.circuit.num_gates
        original_nets = program.circuit.num_nets
        program = program.optimize()

    stats = program.stats()
    schedules = {}
    for name in args.delay_models:
        schedule = program.delay_schedule(name)
        ticks = schedule.ticks
        schedules[name] = {
            "tick": schedule.tick,
            "min_ticks": int(ticks.min()) if ticks.size else 0,
            "max_ticks": int(ticks.max()) if ticks.size else 0,
            "zero_tick_gates": int((ticks == 0).sum()),
            "distinct_ticks": int(np.unique(ticks).size) if ticks.size else 0,
        }
    cache_dir = program_cache_dir()
    payload = {
        **stats,
        "delay_models": schedules,
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
    }
    if args.optimize:
        payload["optimized"] = {
            "gates_removed": original_gates - program.circuit.num_gates,
            "nets_removed": original_nets - program.circuit.num_nets,
        }
    if args.codegen:
        from repro.simulation.codegen import ensure_program_kernel

        payload["codegen"] = ensure_program_kernel(program)
    if args.json:
        _print_json(payload)
        return 0

    print(f"circuit      : {stats['circuit']}")
    print(f"cache key    : {stats['key']}")
    print(f"cache dir    : {payload['cache_dir'] or '(disabled; set REPRO_PROGRAM_CACHE)'}")
    print(f"nets / gates : {stats['nets']} / {stats['gates']} "
          f"({stats['const_gates']} const)")
    print(f"inputs/outputs/latches : {stats['inputs']} / {stats['outputs']} "
          f"/ {stats['latches']}")
    print(f"max fan-in   : {stats['max_arity']}")
    if args.optimize:
        print(f"optimized    : -{payload['optimized']['gates_removed']} gates, "
              f"-{payload['optimized']['nets_removed']} nets")
    per_level = stats["gates_per_level"]
    print(f"logic levels : {stats['levels']}")
    width = max(per_level) if per_level else 1
    for level, count in enumerate(per_level, start=1):
        bar = "#" * max(1, round(40 * count / width)) if count else ""
        print(f"  level {level:>3} : {count:>5} {bar}")
    table = TextTable(
        headers=["Delay model", "Tick (t.u.)", "Ticks min..max", "Zero-tick", "Distinct"],
        precision=6,
    )
    for name, info in schedules.items():
        table.add_row(
            [name, info["tick"], f"{info['min_ticks']}..{info['max_ticks']}",
             info["zero_tick_gates"], info["distinct_ticks"]]
        )
    print("\nQuantized delay schedules:")
    print(table.render())
    if args.codegen:
        report = payload["codegen"]
        print("\nCodegen kernel:")
        if not report["enabled"]:
            print("  unavailable (no C compiler or REPRO_NATIVE=0); "
                  "engines fall back to the numpy sweep")
        else:
            status = "hit" if report["cache_hit"] else "miss (compiled now)"
            print(f"  object : {report['path'] or '(in-memory only; set REPRO_PROGRAM_CACHE)'}")
            if report["size_bytes"] is not None:
                print(f"  size   : {report['size_bytes']} bytes")
            print(f"  cache  : {status}")
            print(f"  source : {report['source_bytes']} bytes "
                  f"(digest {report['source_digest']})")
    return 0


def _cmd_circuits(args: argparse.Namespace) -> int:
    summaries = [dict(circuit_summary(name), circuit=name) for name in list_circuits()]
    if args.json:
        _print_json(summaries)
        return 0
    table = TextTable(headers=["Circuit", "Inputs", "Outputs", "Latches", "Gates", "Nets"])
    for summary in summaries:
        table.add_row(
            [summary["circuit"], summary["inputs"], summary["outputs"], summary["latches"],
             summary["gates"], summary["nets"]]
        )
    print(table.render())
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    if not isinstance(args.params, dict):
        raise SystemExit("--params must be a JSON object, e.g. '{\"warmup_period\": 12}'")
    spec = JobSpec(
        circuit=args.circuit,
        estimator=args.estimator,
        stimulus=_stimulus_spec(args),
        config=_estimation_config(args, num_workers=args.workers),
        seed=args.seed,
        params=args.params,
    )
    progress = _print_progress_event if args.progress else None
    try:
        result = run_job(spec, progress=progress)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if not result.ok or not hasattr(result.result, "average_power_mw"):
        # Estimator kinds with non-PowerEstimate payloads (e.g. the
        # figure3-profile sweep) have no tabular text form here; emit the
        # serialized job result instead.
        _print_json(result.to_dict())
        return 0 if result.ok else 1
    estimate = result.estimate

    reference = None
    if args.reference_cycles > 0:
        from repro.api.jobs import resolve_circuit
        from repro.stimulus.random_inputs import BernoulliStimulus

        circuit = resolve_circuit(args.circuit)
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, args.input_probability),
            total_cycles=args.reference_cycles,
            rng=args.seed + 1,
        )

    if args.json:
        payload = result.to_dict()
        if reference is not None:
            payload["reference"] = {
                "average_power_w": reference.average_power_w,
                "total_cycles": reference.total_cycles,
                "relative_error": estimate.relative_error_to(reference.average_power_w),
            }
        _print_json(payload)
        return 0

    config = spec.config
    print(f"circuit               : {estimate.circuit_name}")
    print(f"estimator             : {spec.estimator}")
    print(f"chains / backend      : {config.num_chains} / {config.simulation_backend}")
    if config.num_workers > 1:
        print(f"shard workers         : {config.num_workers}")
    print(f"average power         : {estimate.average_power_mw:.4f} mW")
    print(f"confidence interval   : [{estimate.lower_bound_w * 1e3:.4f}, "
          f"{estimate.upper_bound_w * 1e3:.4f}] mW")
    print(f"independence interval : {estimate.independence_interval} cycles")
    print(f"sample size           : {estimate.sample_size}")
    print(f"cycles simulated      : {estimate.cycles_simulated}")
    print(f"accuracy met          : {estimate.accuracy_met}")
    if reference is not None:
        error = estimate.relative_error_to(reference.average_power_w)
        print(f"reference power       : {reference.average_power_mw:.4f} mW "
              f"({reference.total_cycles} cycles)")
        print(f"relative error        : {100 * error:.2f} %")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        specs = load_jobs(args.jobs_file)
    except (OSError, ValueError, KeyError) as error:
        raise SystemExit(f"cannot load jobs from {args.jobs_file!r}: {error}") from None
    if not specs:
        raise SystemExit(f"jobs file {args.jobs_file!r} contains no jobs")

    result = BatchRunner(workers=args.workers).run(specs)
    output = args.output or "batch_results.json"
    try:
        result.write_manifest(output)
    except OSError as error:
        raise SystemExit(f"cannot write manifest to {output!r}: {error}") from None

    if args.json:
        _print_json(result.to_dict())
    else:
        table = TextTable(
            headers=["Job", "Circuit", "Status", "Power (mW)", "Samples", "I.I."], precision=4
        )
        for job in result.results:
            estimate = job.result if job.ok else None
            power = getattr(estimate, "average_power_mw", None)
            table.add_row(
                [
                    job.spec.name,
                    job.spec.circuit,
                    job.status,
                    power if power is not None else "-",
                    getattr(estimate, "sample_size", "-"),
                    getattr(estimate, "independence_interval", "-"),
                ]
            )
        print(table.render())
        print(f"\n{len(result.results)} jobs, {result.num_errors} errors; "
              f"manifest written to {output}")
        for job in result.results:
            if not job.ok:
                print(f"  FAILED {job.spec.name}: {job.error}")
    return 0 if result.all_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.core import EstimationService
    from repro.service.server import ServiceServer

    try:
        service = EstimationService(
            store=args.store,
            num_workers=args.workers,
            max_pending=args.max_pending,
            max_retries=args.max_retries,
            auto_checkpoint_events=args.auto_checkpoint_events,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot start service: {error}") from None

    async def _serve() -> None:
        server = ServiceServer(service, host=args.host, port=args.port)
        await server.start()
        host, port = server.address
        jobs = len(service.jobs())
        print(f"estimation service listening on http://{host}:{port} "
              f"({args.workers} workers, {jobs} jobs rehydrated, "
              f"store: {args.store or 'in-memory'})")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    except OSError as error:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {error}") from None
    return 0


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.core.transport import parse_address, run_shard_worker
    from repro.faults import schedule_from_env

    try:
        parse_address(args.connect)
    except ValueError as error:
        raise SystemExit(f"invalid --connect address: {error}") from None
    try:
        schedule = schedule_from_env()
    except ValueError as error:
        raise SystemExit(str(error)) from None
    summary = run_shard_worker(
        args.connect,
        args.token,
        worker_id=args.worker_id,
        fault_schedule=schedule,
        heartbeat_interval=args.heartbeat_interval,
        max_reconnects=args.max_reconnects,
        reconnect_backoff=args.reconnect_backoff,
    )
    if args.json:
        _print_json(summary)
    else:
        print(f"worker {summary['worker']} done: {summary['sessions']} sessions, "
              f"{summary['assignments']} assignments, {summary['handled']} commands handled, "
              f"{summary['fenced']} fenced rejects")
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url)


def _service_call(call):
    """Run one client call, mapping connection/HTTP errors to clean exits."""
    from repro.service.client import ServiceClientError

    try:
        return call()
    except ServiceClientError as error:
        raise SystemExit(str(error)) from None
    except (ConnectionError, OSError) as error:
        raise SystemExit(f"cannot reach the estimation service: {error}") from None


def _cmd_submit(args: argparse.Namespace) -> int:
    if not isinstance(args.params, dict):
        raise SystemExit("--params must be a JSON object, e.g. '{\"warmup_period\": 12}'")
    spec = JobSpec(
        circuit=args.circuit,
        estimator=args.estimator,
        stimulus=_stimulus_spec(args),
        config=_estimation_config(args),
        seed=args.seed,
        params=args.params,
        label=args.label,
    )
    client = _service_client(args)
    payload: Any = spec.to_dict()
    if args.max_retries is not None:
        payload = {"spec": payload, "max_retries": args.max_retries}
    snapshot = _service_call(lambda: client.submit(payload))
    job_id = snapshot["id"]
    if not args.watch:
        if args.json:
            _print_json(snapshot)
        else:
            print(f"submitted {job_id} ({snapshot['name']}): {snapshot['status']}")
        return 0
    stream = client.events(job_id)
    while True:
        envelope = _service_call(lambda: next(stream, None))
        if envelope is None:
            break
        print(json.dumps(envelope), file=sys.stderr)
    final = _service_call(lambda: client.job(job_id))
    if args.json:
        _print_json(final)
    else:
        print(f"{job_id} ({final['name']}): {final['status']}")
        if final.get("error"):
            print(f"  error: {final['error']}")
    return 0 if final["status"] == "completed" else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    client = _service_client(args)
    terminal_kind = None
    stream = _service_call(lambda: client.events(args.job_id, from_seq=args.from_seq))
    while True:
        envelope = _service_call(lambda: next(stream, None))
        if envelope is None:
            break
        print(json.dumps(envelope))
        terminal_kind = envelope["event"]["kind"]
    return 0 if terminal_kind in (None, "job-completed") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.stats:
        stats = _service_call(client.stats)
        if args.json:
            _print_json(stats)
        else:
            for key, value in sorted(stats.items()):
                print(f"{key:>20} : {value}")
        return 0
    jobs = _service_call(client.jobs)
    if args.json:
        _print_json(jobs)
        return 0
    table = TextTable(
        headers=["Job", "Name", "Status", "Samples", "Events", "Ckpt"], precision=4
    )
    for job in jobs:
        table.add_row(
            [job["id"], job["name"], job["status"], job["samples_drawn"],
             job["num_events"], "yes" if job["checkpoint_available"] else "-"]
        )
    print(table.render())
    print(f"\n{len(jobs)} jobs")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    names = (
        TABLE_CIRCUIT_NAMES if args.all_circuits else tuple(args.circuits) or SMALL_CIRCUIT_NAMES
    )
    result = run_table1(
        circuit_names=names,
        config=_estimation_config(args),
        reference_cycles=args.reference_cycles,
        seed=args.seed,
        input_probability=args.input_probability,
        workers=args.workers,
    )
    if args.json:
        _print_json(result.to_dict())
    else:
        print(format_table1(result))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    names = (
        TABLE_CIRCUIT_NAMES if args.all_circuits else tuple(args.circuits) or SMALL_CIRCUIT_NAMES
    )
    result = run_table2(
        circuit_names=names,
        runs_per_circuit=args.runs,
        config=_estimation_config(args),
        reference_cycles=args.reference_cycles,
        seed=args.seed,
        input_probability=args.input_probability,
        workers=args.workers,
    )
    if args.json:
        _print_json(result.to_dict())
    else:
        print(format_table2(result))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    result = run_figure3(
        circuit_name=args.circuit,
        max_interval=args.max_interval,
        sequence_length=args.sequence_length,
        significance_level=args.alpha,
        seed=args.seed,
        input_probability=args.input_probability,
    )
    if args.json:
        _print_json(result.to_dict())
    else:
        print(format_figure3(result))
    return 0


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dipe",
        description="DIPE: statistical average-power estimation for sequential circuits (DAC 1997)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    circuits = subparsers.add_parser("circuits", help="list the registered benchmark circuits")
    _add_json_argument(circuits)
    circuits.set_defaults(handler=_cmd_circuits)

    compile_verb = subparsers.add_parser(
        "compile",
        help="lower one circuit to its cached CircuitProgram and print program stats",
    )
    compile_verb.add_argument("circuit", help="benchmark name or path to a .bench file")
    compile_verb.add_argument(
        "--delay-models", nargs="*", choices=sorted(delay_model_names()),
        default=["zero", "unit", "fanout", "type-table"],
        help="delay models to quantize and report (default: the built-ins)")
    compile_verb.add_argument(
        "--optimize", action="store_true",
        help="apply the optional program optimization passes "
             "(dead-net sweep + buffer/inverter collapse) before reporting")
    compile_verb.add_argument(
        "--codegen", action="store_true",
        help="pre-build the per-circuit compiled sweep kernel and report the "
             "cached shared object (path, size, cache hit/miss); warms the "
             "cache the 'compiled' backend reads")
    _add_json_argument(compile_verb)
    compile_verb.set_defaults(handler=_cmd_compile)

    estimate = subparsers.add_parser("estimate", help="estimate one circuit's average power")
    estimate.add_argument("circuit", help="benchmark name or path to a .bench file")
    estimate.add_argument("--estimator", choices=sorted(estimator_names()), default="dipe",
                          help="registered estimator kind (default: dipe)")
    estimate.add_argument("--params", type=json.loads, default={},
                          help="extra estimator parameters as a JSON object "
                               "(e.g. '{\"warmup_period\": 12}' for fixed-warmup)")
    estimate.add_argument("--reference-cycles", type=int, default=0,
                          help="also run a reference simulation of this many cycles (0 = skip)")
    estimate.add_argument("--progress", action="store_true",
                          help="stream JSON progress events to stderr while running")
    estimate.add_argument("--workers", type=int, default=1,
                          help="worker processes the chain ensemble is sharded across "
                               "(results are identical for any count; composes with "
                               "'repro batch --workers', which parallelises whole jobs)")
    _add_shard_host_arguments(estimate)
    _add_config_arguments(estimate)
    _add_json_argument(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    batch = subparsers.add_parser(
        "batch",
        help="run a JSON list of job specs, optionally across worker processes",
        description="Run every job in a JSON jobs file and write a results manifest. "
                    "Exits 0 only when all jobs succeeded; any errored job makes the "
                    "exit code 1 (the manifest still records all jobs, including "
                    "failures and their error messages).",
    )
    batch.add_argument("jobs_file",
                       help="JSON file: a list of JobSpec dicts or {'jobs': [...]}")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker processes (results are identical for any count)")
    batch.add_argument("--output", default=None,
                       help="results manifest path (default: batch_results.json)")
    _add_json_argument(batch)
    batch.set_defaults(handler=_cmd_batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the estimation service (HTTP + SSE job server)",
        description="Long-running job server: POST JobSpecs to /jobs, stream "
                    "progress from /jobs/{id}/events, cancel with DELETE. "
                    "See docs/service.md for the endpoint reference.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8642, help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent estimation worker threads")
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="queued-job bound; submissions beyond it get HTTP 429")
    serve.add_argument("--max-retries", type=int, default=0,
                       help="default per-job retry budget for failed attempts "
                            "(jobs resume from their auto-snapshot checkpoint)")
    serve.add_argument("--auto-checkpoint-events", type=int, default=32,
                       help="snapshot a resumable checkpoint every N estimator "
                            "events while a job runs")
    serve.add_argument("--store", default=None,
                       help="result-store directory (results/checkpoints survive "
                            "restarts; omit for in-memory only)")
    serve.set_defaults(handler=_cmd_serve)

    shard_worker = subparsers.add_parser(
        "shard-worker",
        help="run a remote TCP shard worker for a distributed estimation run",
        description="Connect to a run's shard coordinator (an estimation "
                    "started with --shard-hosts or REPRO_SHARD_HOSTS), "
                    "authenticate with the shared token, and serve sampling "
                    "commands until the run releases the worker. Workers are "
                    "deterministic executors: adding, losing, or moving them "
                    "never changes results. See docs/distributed.md.",
    )
    shard_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                              help="coordinator address of the estimation run")
    shard_worker.add_argument("--token", default=os.environ.get("REPRO_SHARD_TOKEN", ""),
                              help="shared auth token (env: REPRO_SHARD_TOKEN)")
    shard_worker.add_argument("--worker-id", default=None,
                              help="self-reported worker name (default: host-pid)")
    shard_worker.add_argument("--heartbeat-interval", type=float, default=0.5,
                              help="seconds between liveness heartbeats")
    shard_worker.add_argument("--max-reconnects", type=int, default=64,
                              help="consecutive failed connection attempts before giving up")
    shard_worker.add_argument("--reconnect-backoff", type=float, default=0.2,
                              help="base delay between reconnection attempts")
    _add_json_argument(shard_worker)
    shard_worker.set_defaults(handler=_cmd_shard_worker)

    submit = subparsers.add_parser(
        "submit", help="submit one estimation job to a running service"
    )
    submit.add_argument("circuit", help="benchmark name or path to a .bench file")
    submit.add_argument("--url", default="http://127.0.0.1:8642", help="service base URL")
    submit.add_argument("--estimator", choices=sorted(estimator_names()), default="dipe",
                        help="registered estimator kind (default: dipe)")
    submit.add_argument("--params", type=json.loads, default={},
                        help="extra estimator parameters as a JSON object")
    submit.add_argument("--label", default=None, help="label shown in job listings")
    submit.add_argument("--max-retries", type=int, default=None,
                        help="per-job retry budget (overrides the server default)")
    submit.add_argument("--watch", action="store_true",
                        help="stream the job's events to stderr and wait for the result "
                             "(exit code reflects the job's final status)")
    _add_shard_host_arguments(submit)
    _add_config_arguments(submit)
    _add_json_argument(submit)
    submit.set_defaults(handler=_cmd_submit)

    watch = subparsers.add_parser(
        "watch", help="stream a job's event log (SSE) as JSON lines"
    )
    watch.add_argument("job_id", help="job id returned by 'repro submit'")
    watch.add_argument("--url", default="http://127.0.0.1:8642", help="service base URL")
    watch.add_argument("--from", dest="from_seq", type=int, default=0,
                       help="first event seq to replay (resume a dropped stream)")
    watch.set_defaults(handler=_cmd_watch)

    jobs_verb = subparsers.add_parser(
        "jobs", help="list the jobs of a running service"
    )
    jobs_verb.add_argument("--url", default="http://127.0.0.1:8642", help="service base URL")
    jobs_verb.add_argument("--stats", action="store_true",
                           help="show scheduler counters instead of the job table")
    _add_json_argument(jobs_verb)
    jobs_verb.set_defaults(handler=_cmd_jobs)

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("circuits", nargs="*", help="circuit names (default: quick subset)")
    table1.add_argument("--all-circuits", action="store_true", help="use all 24 paper circuits")
    table1.add_argument("--reference-cycles", type=int, default=50_000)
    table1.add_argument("--workers", type=int, default=1,
                        help="worker processes for the estimation jobs")
    _add_config_arguments(table1)
    _add_json_argument(table1)
    table1.set_defaults(handler=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate the paper's Table 2")
    table2.add_argument("circuits", nargs="*", help="circuit names (default: quick subset)")
    table2.add_argument("--all-circuits", action="store_true", help="use all 24 paper circuits")
    table2.add_argument(
        "--runs", type=int, default=25, help="repeated runs per circuit (paper: 1000)"
    )
    table2.add_argument("--reference-cycles", type=int, default=50_000)
    table2.add_argument("--workers", type=int, default=1,
                        help="worker processes for the estimation jobs")
    _add_config_arguments(table2)
    _add_json_argument(table2)
    table2.set_defaults(handler=_cmd_table2)

    figure3 = subparsers.add_parser("figure3", help="regenerate the paper's Figure 3 sweep")
    figure3.add_argument("--circuit", default="s1494", help="circuit to sweep (paper: s1494)")
    figure3.add_argument("--max-interval", type=int, default=30)
    figure3.add_argument("--sequence-length", type=int, default=10_000)
    _add_config_arguments(figure3)
    _add_json_argument(figure3)
    figure3.set_defaults(handler=_cmd_figure3)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
