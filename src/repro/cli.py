"""Command-line interface for the DIPE reproduction.

The CLI wraps the library's main entry points so the paper's experiments can
be driven without writing Python:

* ``repro-dipe circuits`` — list the registered benchmark circuits and sizes.
* ``repro-dipe estimate s298`` — run DIPE (and optionally the reference) on
  one circuit, either a registered benchmark or a ``.bench`` file.
* ``repro-dipe table1`` / ``table2`` / ``figure3`` — regenerate the paper's
  tables and figure with configurable budgets.

Every command accepts ``--seed`` so results are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.circuits.iscas89 import (
    SMALL_CIRCUIT_NAMES,
    TABLE_CIRCUIT_NAMES,
    build_circuit,
    circuit_summary,
    list_circuits,
)
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.netlist.bench import parse_bench_file
from repro.power.reference import estimate_reference_power
from repro.simulation.compiled import CompiledCircuit
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable


def _estimation_config(args: argparse.Namespace) -> EstimationConfig:
    return EstimationConfig(
        significance_level=args.alpha,
        max_relative_error=args.max_error,
        confidence=args.confidence,
        stopping_criterion=args.stopping,
        power_simulator=args.power_simulator,
        num_chains=args.chains,
        simulation_backend=args.backend,
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=0.20,
                        help="runs-test significance level (paper: 0.20)")
    parser.add_argument("--max-error", type=float, default=0.05,
                        help="maximum relative error of the estimate (paper: 0.05)")
    parser.add_argument("--confidence", type=float, default=0.99,
                        help="confidence of the estimate (paper: 0.99)")
    parser.add_argument("--stopping", choices=("order-statistic", "clt", "ks"),
                        default="order-statistic", help="stopping criterion")
    parser.add_argument("--power-simulator", choices=("zero-delay", "event-driven"),
                        default="zero-delay", help="power engine for the sampled cycles")
    parser.add_argument("--chains", type=int, default=1,
                        help="independent Monte Carlo chains advanced per gate sweep "
                             "(>1 uses the vectorized multi-chain sampler)")
    parser.add_argument("--backend", choices=("auto", "bigint", "numpy"), default="auto",
                        help="zero-delay simulator backend (auto picks by ensemble width)")
    parser.add_argument("--seed", type=int, default=2025, help="random seed")


def _load_circuit(name_or_path: str) -> CompiledCircuit:
    if name_or_path in list_circuits():
        return build_circuit(name_or_path)
    if name_or_path.endswith(".bench"):
        return CompiledCircuit.from_netlist(parse_bench_file(name_or_path))
    raise SystemExit(
        f"unknown circuit {name_or_path!r}: pass a registered benchmark name "
        f"({', '.join(list_circuits())}) or a path to a .bench file"
    )


# --------------------------------------------------------------------- verbs
def _cmd_circuits(_args: argparse.Namespace) -> int:
    table = TextTable(headers=["Circuit", "Inputs", "Outputs", "Latches", "Gates", "Nets"])
    for name in list_circuits():
        summary = circuit_summary(name)
        table.add_row(
            [name, summary["inputs"], summary["outputs"], summary["latches"],
             summary["gates"], summary["nets"]]
        )
    print(table.render())
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    config = _estimation_config(args)
    stimulus = BernoulliStimulus(circuit.num_inputs, args.input_probability)
    estimate = DipeEstimator(circuit, stimulus=stimulus, config=config, rng=args.seed).estimate()

    print(f"circuit               : {circuit.name}")
    print(f"chains / backend      : {config.num_chains} / {config.simulation_backend}")
    print(f"average power         : {estimate.average_power_mw:.4f} mW")
    print(f"confidence interval   : [{estimate.lower_bound_w * 1e3:.4f}, "
          f"{estimate.upper_bound_w * 1e3:.4f}] mW")
    print(f"independence interval : {estimate.independence_interval} cycles")
    print(f"sample size           : {estimate.sample_size}")
    print(f"cycles simulated      : {estimate.cycles_simulated}")
    print(f"accuracy met          : {estimate.accuracy_met}")

    if args.reference_cycles > 0:
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, args.input_probability),
            total_cycles=args.reference_cycles,
            rng=args.seed + 1,
        )
        error = estimate.relative_error_to(reference.average_power_w)
        print(f"reference power       : {reference.average_power_mw:.4f} mW "
              f"({reference.total_cycles} cycles)")
        print(f"relative error        : {100 * error:.2f} %")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    names = (
        TABLE_CIRCUIT_NAMES if args.all_circuits else tuple(args.circuits) or SMALL_CIRCUIT_NAMES
    )
    result = run_table1(
        circuit_names=names,
        config=_estimation_config(args),
        reference_cycles=args.reference_cycles,
        seed=args.seed,
    )
    print(format_table1(result))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    names = (
        TABLE_CIRCUIT_NAMES if args.all_circuits else tuple(args.circuits) or SMALL_CIRCUIT_NAMES
    )
    result = run_table2(
        circuit_names=names,
        runs_per_circuit=args.runs,
        config=_estimation_config(args),
        reference_cycles=args.reference_cycles,
        seed=args.seed,
    )
    print(format_table2(result))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    result = run_figure3(
        circuit_name=args.circuit,
        max_interval=args.max_interval,
        sequence_length=args.sequence_length,
        significance_level=args.alpha,
        seed=args.seed,
    )
    print(format_figure3(result))
    return 0


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dipe",
        description="DIPE: statistical average-power estimation for sequential circuits (DAC 1997)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    circuits = subparsers.add_parser("circuits", help="list the registered benchmark circuits")
    circuits.set_defaults(handler=_cmd_circuits)

    estimate = subparsers.add_parser("estimate", help="estimate one circuit's average power")
    estimate.add_argument("circuit", help="benchmark name or path to a .bench file")
    estimate.add_argument("--input-probability", type=float, default=0.5,
                          help="probability of 1 at every primary input (paper: 0.5)")
    estimate.add_argument("--reference-cycles", type=int, default=0,
                          help="also run a reference simulation of this many cycles (0 = skip)")
    _add_config_arguments(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("circuits", nargs="*", help="circuit names (default: quick subset)")
    table1.add_argument("--all-circuits", action="store_true", help="use all 24 paper circuits")
    table1.add_argument("--reference-cycles", type=int, default=50_000)
    _add_config_arguments(table1)
    table1.set_defaults(handler=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate the paper's Table 2")
    table2.add_argument("circuits", nargs="*", help="circuit names (default: quick subset)")
    table2.add_argument("--all-circuits", action="store_true", help="use all 24 paper circuits")
    table2.add_argument(
        "--runs", type=int, default=25, help="repeated runs per circuit (paper: 1000)"
    )
    table2.add_argument("--reference-cycles", type=int, default=50_000)
    _add_config_arguments(table2)
    table2.set_defaults(handler=_cmd_table2)

    figure3 = subparsers.add_parser("figure3", help="regenerate the paper's Figure 3 sweep")
    figure3.add_argument("--circuit", default="s1494", help="circuit to sweep (paper: s1494)")
    figure3.add_argument("--max-interval", type=int, default=30)
    figure3.add_argument("--sequence-length", type=int, default=10_000)
    _add_config_arguments(figure3)
    figure3.set_defaults(handler=_cmd_figure3)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
