"""Result records produced by the estimators.

All records are JSON-serializable through ``to_dict``/``from_dict`` pairs
that round-trip bit-exactly (floats survive the JSON text encoding unchanged
— Python serializes them with ``repr`` precision), so estimates can be
written to batch manifests and reloaded without losing information.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass(frozen=True)
class IntervalTrial:
    """Outcome of one iteration of the interval-selection procedure (Fig. 2)."""

    interval: int
    z_statistic: float
    accepted: bool
    sequence_length: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IntervalTrial":
        return cls(**data)


@dataclass(frozen=True)
class IntervalSelectionResult:
    """Final outcome of the independence-interval selection procedure.

    Attributes
    ----------
    interval:
        The selected independence interval in clock cycles.
    converged:
        ``True`` when the runs-test hypothesis was accepted; ``False`` when
        the search hit ``max_independence_interval`` without acceptance (the
        last trial interval is still returned so estimation can proceed, but
        the caller is warned through this flag).
    trials:
        One :class:`IntervalTrial` per examined interval, in order.
    significance_level:
        The significance level the runs tests were run at.
    cycles_simulated:
        Total clock cycles spent inside the selection procedure.
    """

    interval: int
    converged: bool
    trials: tuple[IntervalTrial, ...]
    significance_level: float
    cycles_simulated: int

    @property
    def num_trials(self) -> int:
        """Number of trial intervals examined."""
        return len(self.trials)

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "converged": self.converged,
            "trials": [trial.to_dict() for trial in self.trials],
            "significance_level": self.significance_level,
            "cycles_simulated": self.cycles_simulated,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IntervalSelectionResult":
        return cls(
            interval=data["interval"],
            converged=data["converged"],
            trials=tuple(IntervalTrial.from_dict(trial) for trial in data["trials"]),
            significance_level=data["significance_level"],
            cycles_simulated=data["cycles_simulated"],
        )


@dataclass(frozen=True)
class PowerEstimate:
    """Average-power estimate with its full diagnostic trail.

    Attributes
    ----------
    circuit_name:
        Name of the estimated circuit.
    method:
        Estimator that produced the result (``"dipe"``, ``"consecutive-mc"``,
        ``"fixed-warmup"``).
    average_power_w:
        The point estimate of average power, in watts.
    lower_bound_w / upper_bound_w:
        Confidence interval on the average power at the configured confidence.
    relative_half_width:
        Half-width of the interval relative to the estimate (compare against
        the configured maximum error).
    sample_size:
        Number of power samples used.
    independence_interval:
        Independence interval (clock cycles) between consecutive samples;
        0 for estimators that sample every cycle.
    cycles_simulated:
        Total simulated clock cycles, including warm-up and interval search.
    elapsed_seconds:
        Wall-clock time of the estimation.
    stopping_criterion:
        Name of the stopping criterion that terminated sampling.
    accuracy_met:
        Whether the criterion's accuracy specification was satisfied (False
        when the ``max_samples`` cap was hit first).
    interval_selection:
        Diagnostics of the interval-selection phase (``None`` for baselines).
    effective_sample_size:
        Independent-sample equivalent of the collected sample's precision
        (``None`` for plain i.i.d. sampling, where it would equal the raw
        count).  Reported by estimators using variance-reduction techniques
        (:mod:`repro.variance`): above ``sample_size`` means the coupling
        bought extra precision per raw sample.
    samples_switched_capacitance_f:
        The raw sample of per-cycle switched capacitance (farads); kept so
        reports and tests can re-analyse the sample.
    """

    circuit_name: str
    method: str
    average_power_w: float
    lower_bound_w: float
    upper_bound_w: float
    relative_half_width: float
    sample_size: int
    independence_interval: int
    cycles_simulated: int
    elapsed_seconds: float
    stopping_criterion: str
    accuracy_met: bool
    interval_selection: IntervalSelectionResult | None = None
    effective_sample_size: float | None = None
    samples_switched_capacitance_f: tuple[float, ...] = field(default=(), repr=False)

    @property
    def average_power_mw(self) -> float:
        """Average power in milliwatts (the unit used by the paper's tables)."""
        return self.average_power_w * 1e3

    def relative_error_to(self, reference_power_w: float) -> float:
        """Absolute relative deviation from a reference power (Eq. (8) summand)."""
        if reference_power_w <= 0:
            raise ValueError("reference power must be positive")
        return abs(reference_power_w - self.average_power_w) / reference_power_w

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation; inverse of :meth:`from_dict` bit-for-bit."""
        return {
            "circuit_name": self.circuit_name,
            "method": self.method,
            "average_power_w": self.average_power_w,
            "lower_bound_w": self.lower_bound_w,
            "upper_bound_w": self.upper_bound_w,
            "relative_half_width": self.relative_half_width,
            "sample_size": self.sample_size,
            "independence_interval": self.independence_interval,
            "cycles_simulated": self.cycles_simulated,
            "elapsed_seconds": self.elapsed_seconds,
            "stopping_criterion": self.stopping_criterion,
            "accuracy_met": self.accuracy_met,
            "interval_selection": (
                self.interval_selection.to_dict() if self.interval_selection is not None else None
            ),
            "effective_sample_size": self.effective_sample_size,
            "samples_switched_capacitance_f": list(self.samples_switched_capacitance_f),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PowerEstimate":
        """Rebuild an estimate from :meth:`to_dict` output."""
        interval_selection = data.get("interval_selection")
        return cls(
            circuit_name=data["circuit_name"],
            method=data["method"],
            average_power_w=data["average_power_w"],
            lower_bound_w=data["lower_bound_w"],
            upper_bound_w=data["upper_bound_w"],
            relative_half_width=data["relative_half_width"],
            sample_size=data["sample_size"],
            independence_interval=data["independence_interval"],
            cycles_simulated=data["cycles_simulated"],
            elapsed_seconds=data["elapsed_seconds"],
            stopping_criterion=data["stopping_criterion"],
            accuracy_met=data["accuracy_met"],
            interval_selection=(
                IntervalSelectionResult.from_dict(interval_selection)
                if interval_selection is not None
                else None
            ),
            effective_sample_size=data.get("effective_sample_size"),
            samples_switched_capacitance_f=tuple(data.get("samples_switched_capacitance_f", ())),
        )
