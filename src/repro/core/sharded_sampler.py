"""Process-sharded multi-chain power sampling with a deterministic sample merge.

:class:`ShardedPowerSampler` is the multi-process counterpart of
:class:`~repro.core.batch_sampler.BatchPowerSampler`: the ``num_chains``
lock-step chains are partitioned into word-aligned lane shards and each shard
is simulated by a persistent worker process owning a real
:class:`BatchPowerSampler` (with its own zero-delay and event-driven engine
instances) over just its lanes.  The DIPE flow is embarrassingly parallel at
the chain level, so the only hard part is determinism — and the design here
makes the merged sample stream **draw-for-draw identical** to the
single-process engine by construction:

* The *parent* owns the run's single RNG and the stimulus.  It draws latch
  randomisations and input patterns in exactly the order the in-process
  sampler would (one :meth:`~repro.stimulus.base.Stimulus.next_bits` call per
  clock cycle, one ``integers(0, 2, size=num_chains)`` call per latch), then
  scatters each worker its word-aligned lane slice.  Workers never draw
  randomness; they consume parent-fed pattern words through a FIFO feed.
  Chain *k* therefore sees the identical bit stream no matter how many
  workers exist — including ``num_workers=1`` and the in-process engine.
* Workers produce their shard's ``sample_block`` concurrently; the parent
  merges the per-shard ``(sweeps, shard_width)`` blocks with a deterministic
  lane-order interleave (``concatenate`` along the lane axis, then the same
  chain-major reshape the in-process sampler uses), so stopping decisions,
  adaptive-chain resizes and final estimates are pinned equal to
  :class:`BatchPowerSampler` with the same ``num_chains``.
* :meth:`get_state` gathers the per-shard simulator words and merges them —
  together with the parent's RNG bit-generator state and stimulus state —
  into the *same checkpoint schema* :class:`BatchPowerSampler` produces, so
  resumed sharded runs are bit-identical and checkpoints are interchangeable
  between the sharded and the in-process engine (pinned by tests).
* :meth:`resize` re-partitions the shards (workers rebuild their engines at
  the new widths and the parent re-feeds the re-warm randomness), so
  adaptive chain scaling crosses shard boundaries freely — growing past
  ``max_chains // num_workers`` or shrinking below the worker count simply
  changes the partition, idling surplus workers.

Shards are word-aligned (64 lanes per ``uint64`` word), so scattering a
pattern block and merging simulator state are pure word-slice operations; an
ensemble narrower than ``64 * num_workers`` lanes leaves the surplus workers
idle.

Workers receive the parent's prebuilt
:class:`~repro.circuits.program.CircuitProgram` (pickled through the process
boundary, or inherited on fork), so pool startup performs exactly one
circuit lowering no matter how many workers exist — worker engines bind the
shared tables instead of recompiling them (gated by
``benchmarks/test_bench_compile.py``).

Worker processes are spawn-safe (the worker entry point is a module-level
function fed picklable state), default to the platform's fastest start
method, and fall back to an in-process serial shard pool on platforms
without multiprocessing support — results are identical either way, only
wall-clock time changes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import traceback
import weakref
from collections import deque
from typing import Sequence

import numpy as np

from repro.circuits.program import CircuitProgram
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.simulation.zero_delay import resolve_backend
from repro.stimulus.base import Stimulus
from repro.utils.bitpack import (
    bits_to_words,
    pack_int_to_words,
    unpack_words_to_int,
    words_per_width,
    words_to_bits,
)
from repro.utils.rng import RandomSource

__all__ = ["ShardedPowerSampler", "partition_chains"]

#: Clock cycles of pattern words shipped per feed message; bounds the size of
#: one pipe write while keeping the per-command message count small.
_FEED_CHUNK = 2048


def partition_chains(num_chains: int, num_workers: int) -> list[tuple[int, int]]:
    """Partition *num_chains* lanes into word-aligned shards, one per worker.

    Returns ``(lane_offset, width)`` per worker.  The underlying uint64 lane
    words are distributed as evenly as possible (so shard widths are
    multiples of 64 except possibly the last non-empty shard); workers beyond
    the available words receive ``width == 0`` and idle.  Worker 0 always
    holds chain 0 of a non-empty ensemble.
    """
    if num_chains < 1:
        raise ValueError("num_chains must be at least 1")
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    total_words = words_per_width(num_chains)
    base, extra = divmod(total_words, num_workers)
    shards: list[tuple[int, int]] = []
    word_offset = 0
    for worker in range(num_workers):
        words = base + (1 if worker < extra else 0)
        lane_offset = word_offset * 64
        width = max(0, min(num_chains - lane_offset, words * 64))
        shards.append((lane_offset, width))
        word_offset += words
    return shards


# --------------------------------------------------------------------- worker
class _PatternFeed:
    """FIFO of parent-generated pattern/latch word blocks for one shard."""

    def __init__(self) -> None:
        self._patterns: deque[np.ndarray] = deque()
        self._latches: deque[np.ndarray] = deque()

    def push_patterns(self, block: np.ndarray) -> None:
        """Queue a ``(cycles, num_inputs, num_words)`` block, one entry per cycle."""
        for index in range(block.shape[0]):
            self._patterns.append(block[index])

    def push_latches(self, words: np.ndarray) -> None:
        self._latches.append(words)

    def pop_pattern(self) -> np.ndarray:
        if not self._patterns:
            raise RuntimeError("shard pattern feed exhausted (parent under-fed a command)")
        return self._patterns.popleft()

    def pop_latches(self) -> np.ndarray:
        if not self._latches:
            raise RuntimeError("shard latch feed exhausted (parent under-fed a command)")
        return self._latches.popleft()


class _FeedStimulus(Stimulus):
    """Stimulus facade over a :class:`_PatternFeed` (consumes no RNG)."""

    def __init__(self, num_inputs: int, feed: _PatternFeed):
        super().__init__(num_inputs)
        self._feed = feed

    def next_bits(self, rng, width: int = 1) -> np.ndarray:
        return words_to_bits(self._feed.pop_pattern(), width)


class _ShardSampler(BatchPowerSampler):
    """A :class:`BatchPowerSampler` over one lane shard, driven by fed patterns.

    Identical to its base in every engine-facing respect; only the sources of
    randomness are replaced: input patterns pop from the parent-fed FIFO and
    the latch randomisation loads parent-drawn bits instead of consuming a
    local RNG stream.

    The parent resolves both simulator backends at the *full* ensemble width
    and forces them on every shard (``backend`` and ``event_backend`` arrive
    pre-resolved): a narrow shard must not drop to the big-int or scalar
    engine, whose floating-point accumulation order differs from the
    vectorized engines' — per-lane energies must come out of the same
    arithmetic the in-process full-width sampler uses, bit for bit.
    """

    def __init__(
        self,
        program: CircuitProgram,
        config,
        width: int,
        backend: str,
        event_backend: str,
        feed: _PatternFeed,
    ):
        self._feed = feed
        self._event_backend_request = event_backend
        super().__init__(
            program,
            _FeedStimulus(program.circuit.num_inputs, feed),
            config,
            rng=0,  # never drawn from — all randomness arrives through the feed
            num_chains=width,
            backend=backend,
        )

    def _next_pattern(self):
        words = self._feed.pop_pattern()
        if self._use_words:
            return words
        return [unpack_words_to_int(row) for row in words]

    def _warm_up(self, warmup_cycles: int | None = None) -> None:
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self._engine.load_latch_lanes(self._feed.pop_latches())
        self._engine.settle(self._next_pattern())
        self._prepared = True
        for _ in range(warmup):
            self._advance_one_cycle()

    def restart_from_random_state(self) -> None:
        self._engine.load_latch_lanes(self._feed.pop_latches())
        self._engine.settle(self._next_pattern())
        self._prepared = True


class _ShardServer:
    """Executes shard commands against a worker-local :class:`_ShardSampler`.

    The same server runs inside a worker process (via
    :func:`_shard_worker_main`) and in-process (via :class:`_LocalShard`), so
    the process pool and the serial fallback share one code path.
    """

    def __init__(self, program: CircuitProgram, config: EstimationConfig, backend: str):
        # The parent's prebuilt program crosses the process boundary whole
        # (or is inherited on fork), so shard engines never recompile it.
        self.program = program
        self.config = config
        self.backend_request = backend
        self.feed = _PatternFeed()
        self.sampler: _ShardSampler | None = None

    def _require_sampler(self) -> _ShardSampler:
        if self.sampler is None:
            raise RuntimeError("shard has no chains (width 0); command not expected")
        return self.sampler

    def handle(self, message: tuple):
        op = message[0]
        if op == "feed":
            self.feed.push_patterns(message[1])
            return None
        if op == "feed_latch":
            self.feed.push_latches(message[1])
            return None
        if op == "build":
            # Fresh engines at the new width — the shard-level equivalent of
            # BatchPowerSampler._build_engines during construction or resize.
            # Both backends arrive pre-resolved at the full ensemble width.
            width, zd_backend, event_backend = message[1], message[2], message[3]
            self.sampler = (
                _ShardSampler(
                    self.program, self.config, width, zd_backend, event_backend, self.feed
                )
                if width > 0
                else None
            )
            return self.sampler.backend if self.sampler is not None else None
        if op == "prepare":
            self._require_sampler().prepare(message[1])
            return None
        if op == "warm_up":
            self._require_sampler()._warm_up(message[1])
            return None
        if op == "restart":
            self._require_sampler().restart_from_random_state()
            return None
        if op == "advance":
            self._require_sampler().advance(message[1])
            return None
        if op == "sample_block":
            interval, sweeps = message[1], message[2]
            sampler = self._require_sampler()
            block = sampler.sample_block(interval, sweeps * sampler.num_chains)
            return block.reshape(sweeps, sampler.num_chains)
        if op == "collect_sequence":
            interval, length, want = message[1], message[2], message[3]
            sampler = self._require_sampler()
            if want:
                return sampler.collect_sequence(interval, length)
            # Measuring is state- and feed-neutral, so shards that do not own
            # chain 0 advance through the same cycles without resolving lanes.
            sampler.advance((interval + 1) * length)
            return None
        if op == "get_state":
            sampler = self._require_sampler()
            return {
                "engine": sampler._engine.get_state(),
                "prepared": sampler._prepared,
                "num_chains": sampler.num_chains,
            }
        if op == "set_state":
            payload = message[1]
            sampler = self._require_sampler()
            sampler._engine.set_state(payload["engine"])
            sampler._prepared = payload["prepared"]
            return None
        raise ValueError(f"unknown shard command {op!r}")


def _shard_worker_main(conn, program, config, backend_request) -> None:
    """Worker process entry point: serve shard commands until "stop" or EOF."""
    server = _ShardServer(program, config, backend_request)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                conn.send(("ok", None))
                break
            try:
                reply = server.handle(message)
            except BaseException:  # noqa: BLE001 — errors travel back to the parent
                conn.send(("error", traceback.format_exc()))
            else:
                conn.send(("ok", reply))
    finally:
        conn.close()


class _ProcessShard:
    """Parent-side handle of one worker process (request/reply over a pipe)."""

    def __init__(self, ctx, program, config, backend_request):
        self.connection, child_conn = mp.Pipe()
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, program, config, backend_request),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.pending = 0

    def send(self, *message) -> None:
        self.connection.send(message)
        self.pending += 1

    def collect(self) -> list:
        """Receive one reply per outstanding request; raise on worker errors."""
        replies = []
        while self.pending:
            self.pending -= 1
            try:
                status, payload = self.connection.recv()
            except (EOFError, OSError) as error:
                raise RuntimeError("shard worker process died unexpectedly") from error
            if status == "error":
                raise RuntimeError(f"shard worker failed:\n{payload}")
            replies.append(payload)
        return replies

    def stop(self) -> None:
        # Idempotent and silent: this also runs from a ``weakref.finalize``
        # callback during interpreter shutdown, where the pipe may already be
        # closed and parts of the multiprocessing machinery already torn
        # down — nothing here may raise or print.
        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        try:
            self.connection.send(("stop",))
            self.connection.recv()
        except Exception:  # noqa: BLE001 — peer already gone is fine
            pass
        try:
            self.connection.close()
        except Exception:  # noqa: BLE001
            pass
        try:
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2.0)
        except Exception:  # noqa: BLE001 — shutdown-time join can fail harmlessly
            pass


class _LocalShard:
    """In-process stand-in for a worker (serial fallback; same command path)."""

    def __init__(self, program, config, backend_request):
        self._server = _ShardServer(program, config, backend_request)
        self._replies: deque = deque()

    def send(self, *message) -> None:
        try:
            self._replies.append(("ok", self._server.handle(message)))
        except Exception:  # noqa: BLE001 — mirror the process transport
            self._replies.append(("error", traceback.format_exc()))

    def collect(self) -> list:
        replies = []
        while self._replies:
            status, payload = self._replies.popleft()
            if status == "error":
                raise RuntimeError(f"shard worker failed:\n{payload}")
            replies.append(payload)
        return replies

    def stop(self) -> None:
        self._replies.clear()
        self._server.sampler = None


def _shutdown_pool(handles: list) -> None:
    """Stop every shard handle; never raises (runs from weakref.finalize)."""
    for handle in handles:
        try:
            handle.stop()
        except Exception:  # noqa: BLE001 — one bad handle must not strand the rest
            pass


# --------------------------------------------------------------------- parent
class ShardedPowerSampler(BatchPowerSampler):
    """Multi-chain power sampler sharded across a pool of worker processes.

    Drop-in replacement for :class:`BatchPowerSampler` (same constructor
    signature plus the worker knobs, same public API): with the same seed and
    ``num_chains`` it produces identical samples, stopping decisions,
    checkpoints and estimates for *any* worker count.  Selected by
    :func:`~repro.core.batch_sampler.make_sampler` when
    ``EstimationConfig(num_workers > 1)``.

    Parameters
    ----------
    circuit, stimulus, config, rng, num_chains, backend:
        As for :class:`BatchPowerSampler`.
    num_workers:
        Size of the worker pool; defaults to ``config.num_workers``.
    start_method:
        Multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``"serial"`` for the in-process fallback pool;
        defaults to the ``REPRO_SHARD_START_METHOD`` environment variable or
        the platform's fastest available method.  Platforms where worker
        processes cannot be created fall back to ``"serial"`` transparently.
    """

    def __init__(
        self,
        circuit,
        stimulus: Stimulus,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        num_chains: int | None = None,
        backend: str | None = None,
        num_workers: int | None = None,
        start_method: str | None = None,
    ):
        config = config or EstimationConfig()
        self.num_workers = config.num_workers if num_workers is None else num_workers
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self._start_method = (
            start_method
            if start_method is not None
            else os.environ.get("REPRO_SHARD_START_METHOD") or None
        )
        self._handles: list | None = None
        self._finalizer = None
        super().__init__(
            circuit, stimulus, config, rng=rng, num_chains=num_chains, backend=backend
        )

    # ------------------------------------------------------------------- pool
    def _spawn_pool(self) -> list:
        if self._start_method == "serial":
            return [
                _LocalShard(self.program, self.config, self._backend_request)
                for _ in range(self.num_workers)
            ]
        if self._start_method is not None:
            ctx = mp.get_context(self._start_method)
        elif sys.platform == "linux" and "fork" in mp.get_all_start_methods():
            # Fork is the cheap path (no re-import per worker) and safe on
            # Linux; macOS forks crash in Accelerate/ObjC runtimes, which is
            # why CPython made spawn the default there — honour that default
            # everywhere else.
            ctx = mp.get_context("fork")
        else:
            ctx = mp.get_context()
        handles: list = []
        try:
            for _ in range(self.num_workers):
                handles.append(
                    _ProcessShard(ctx, self.program, self.config, self._backend_request)
                )
        except (OSError, PermissionError, RuntimeError, AssertionError):
            # Sandboxes (or daemonic parents) that cannot create processes:
            # identical results from the in-process pool, one process.
            _shutdown_pool(handles)
            return [
                _LocalShard(self.program, self.config, self._backend_request)
                for _ in range(self.num_workers)
            ]
        return handles

    def _build_engines(self) -> None:
        """(Re)partition the ensemble and rebuild every shard's engines."""
        if self._handles is None:
            if self.config.power_simulator == "event-driven":
                # Warm the configured delay schedule before the program
                # crosses the process boundary, so spawned workers
                # deserialize the quantization instead of each repeating it.
                self.program.delay_schedule(self.config.delay_model)
            self._handles = self._spawn_pool()
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._handles)
        self._shards = partition_chains(self.num_chains, self.num_workers)
        self._num_words = words_per_width(self.num_chains)
        # No in-process engines: every engine-facing base-class method is
        # overridden to delegate to the shard pool.
        self._engine = None
        self._power = None
        self._event_engine = None
        self._use_words = True
        # Backends are resolved at the FULL ensemble width and forced on all
        # shards: a narrow shard falling back to the big-int or scalar engine
        # would change the floating-point accumulation order of its lane
        # energies and break the bit-identical merge.
        zd_backend = resolve_backend(self._backend_request, self.num_chains)
        event_backend = "scalar" if self.num_chains == 1 else "numpy"
        for handle, (_, width) in zip(self._handles, self._shards):
            handle.send("build", width, zd_backend, event_backend)
        self._shard_backends = [replies[0] for replies in self._collect_all()]

    def close(self) -> None:
        """Shut the worker pool down (also runs on garbage collection)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._handles = None

    def __enter__(self) -> "ShardedPowerSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- messaging
    def _active(self) -> list[tuple[object, int, int, int, int, int]]:
        """(handle, worker, lane_offset, width, word_offset, word_count) per live shard."""
        active = []
        for worker, (handle, (offset, width)) in enumerate(zip(self._handles, self._shards)):
            if width > 0:
                active.append(
                    (handle, worker, offset, width, offset // 64, words_per_width(width))
                )
        return active

    def _collect_all(self) -> list[list]:
        return [handle.collect() for handle in self._handles]

    def _collect_active(self) -> list[list]:
        return [entry[0].collect() for entry in self._active()]

    def _scatter_patterns(self, cycles: int) -> None:
        """Draw *cycles* input patterns from the run RNG and feed shard slices.

        Consumes the RNG stream exactly like *cycles* successive
        ``stimulus.next_bits(rng, num_chains)`` calls (the in-process
        sampler's draw order), then word-slices the packed block per shard.
        """
        active = self._active()
        for start in range(0, cycles, _FEED_CHUNK):
            chunk = min(_FEED_CHUNK, cycles - start)
            bits = self.stimulus.next_bits_block(self.rng, self.num_chains, chunk)
            words = bits_to_words(bits, self._num_words)
            for handle, _, _, _, word_offset, word_count in active:
                shard_words = words[:, :, word_offset : word_offset + word_count]
                handle.send("feed", np.ascontiguousarray(shard_words))

    def _scatter_latches(self) -> None:
        """Draw the latch randomisation and feed shard slices.

        One ``integers(0, 2, size=num_chains)`` call per latch, in latch
        order — the exact stream ``randomize_state`` consumes in-process.
        """
        num_latches = self.circuit.num_latches
        bits = np.empty((num_latches, self.num_chains), dtype=np.uint8)
        for index in range(num_latches):
            bits[index] = self.rng.integers(0, 2, size=self.num_chains, dtype="uint8")
        words = bits_to_words(bits, self._num_words)
        for handle, _, _, _, word_offset, word_count in self._active():
            handle.send(
                "feed_latch",
                np.ascontiguousarray(words[:, word_offset : word_offset + word_count]),
            )

    # ------------------------------------------------------------- properties
    @property
    def backend(self) -> str:
        """Backend the equivalent in-process sampler would resolve (state format)."""
        return resolve_backend(self._backend_request, self.num_chains)

    def shard_progress(self):
        """Current :class:`~repro.api.events.ShardProgress` tuple (for events)."""
        from repro.api.events import ShardProgress

        return tuple(
            ShardProgress(
                worker=index, num_chains=width, lane_offset=min(offset, self.num_chains)
            )
            for index, (offset, width) in enumerate(self._shards)
        )

    # ----------------------------------------------------------------- set-up
    def _warm_up(self, warmup_cycles: int | None = None) -> None:
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self._scatter_latches()
        self._scatter_patterns(1 + warmup)
        for entry in self._active():
            entry[0].send("prepare", warmup)
        self._collect_active()
        self._prepared = True
        self.cycles_simulated += warmup

    def restart_from_random_state(self) -> None:
        self._scatter_latches()
        self._scatter_patterns(1)
        for entry in self._active():
            entry[0].send("restart")
        self._collect_active()
        self._prepared = True

    # ------------------------------------------------------------------ steps
    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._require_prepared()
        if cycles == 0:
            return
        self._scatter_patterns(cycles)
        for entry in self._active():
            entry[0].send("advance", cycles)
        self._collect_active()
        self.cycles_simulated += cycles

    def _sample_sweeps(self, interval: int, sweeps: int) -> np.ndarray:
        """Run *sweeps* measured sweeps; return the merged (sweeps, num_chains) block."""
        self._require_prepared()
        self._scatter_patterns(sweeps * (interval + 1))
        for entry in self._active():
            entry[0].send("sample_block", interval, sweeps)
        parts = [replies[-1] for replies in self._collect_active()]
        self.cycles_simulated += sweeps * (interval + 1)
        return np.concatenate(parts, axis=1)

    def measure_cycle(self) -> np.ndarray:
        self._require_prepared()
        return self._sample_sweeps(0, 1).reshape(-1)

    def measure_cycle_total(self) -> float:
        """Lane-resolved measurement summed over the merged ensemble."""
        return float(self.measure_cycle().sum())

    def next_samples(self, interval: int) -> np.ndarray:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self._require_prepared()
        return self._sample_sweeps(interval, 1).reshape(-1)

    def sample_block(self, interval: int, min_count: int) -> np.ndarray:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        sweeps = -(-min_count // self.num_chains)
        return self._sample_sweeps(interval, sweeps).reshape(-1)

    def collect_sequence(self, interval: int, length: int) -> list[float]:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if length < 1:
            raise ValueError("length must be at least 1")
        self._require_prepared()
        self._scatter_patterns((interval + 1) * length)
        active = self._active()
        for position, entry in enumerate(active):
            # Chain 0 lives in the first non-empty shard; only it resolves lanes.
            entry[0].send("collect_sequence", interval, length, position == 0)
        sequence = self._collect_active()[0][-1]
        self.cycles_simulated += (interval + 1) * length
        return sequence

    # ------------------------------------------------------------------ state
    def get_state(self) -> dict:
        """Gather per-shard states into the :class:`BatchPowerSampler` schema.

        The returned snapshot is interchangeable with an in-process
        sampler's: it restores into either engine and the continued runs are
        bit-identical (the parent's RNG consumed the same stream the
        in-process sampler would have).
        """
        for entry in self._active():
            entry[0].send("get_state")
        states = [replies[-1] for replies in self._collect_active()]
        return {
            "rng": self.rng.bit_generator.state,
            "num_chains": self.num_chains,
            "cycles_simulated": self.cycles_simulated,
            "prepared": self._prepared,
            "engine": self._merge_engine_states([state["engine"] for state in states]),
            "stimulus": self.stimulus.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from either the sharded or the in-process sampler."""
        chains = state.get("num_chains", self.num_chains)
        if chains != self.num_chains:
            self.num_chains = chains
            self._build_engines()
        self.rng.bit_generator.state = state["rng"]
        self.cycles_simulated = state["cycles_simulated"]
        self._prepared = state["prepared"]
        shard_states = self._split_engine_state(state["engine"])
        for entry, shard_state in zip(self._active(), shard_states):
            entry[0].send("set_state", {"engine": shard_state, "prepared": self._prepared})
        self._collect_active()
        self.stimulus.set_state(state["stimulus"])

    def _merge_engine_states(self, states: Sequence[dict]) -> dict:
        """Merge per-shard engine snapshots into one full-width snapshot."""
        columns = []
        for state, (_, _, _, width, _, word_count) in zip(states, self._active()):
            if state["backend"] == "numpy":
                columns.append(np.asarray(state["words"], dtype=np.uint64))
            else:
                columns.append(
                    np.stack(
                        [pack_int_to_words(value, word_count) for value in state["values"]]
                    )
                )
        words = np.concatenate(columns, axis=1)
        settled = states[0]["settled"]
        cycles = states[0]["cycles"]
        if self.backend == "numpy":
            return {"backend": "numpy", "words": words, "settled": settled, "cycles": cycles}
        return {
            "backend": "bigint",
            "values": [unpack_words_to_int(row) for row in words],
            "settled": settled,
            "cycles": cycles,
        }

    def _split_engine_state(self, engine_state: dict) -> list[dict]:
        """Slice a full-width engine snapshot into per-shard snapshots."""
        if engine_state["backend"] == "numpy":
            words = np.asarray(engine_state["words"], dtype=np.uint64)
        else:
            words = np.stack(
                [
                    pack_int_to_words(value, self._num_words)
                    for value in engine_state["values"]
                ]
            )
        settled = engine_state["settled"]
        cycles = engine_state["cycles"]
        shard_states = []
        for _, worker, _, width, word_offset, word_count in self._active():
            shard_words = np.ascontiguousarray(words[:, word_offset : word_offset + word_count])
            if self._shard_backends[worker] == "numpy":
                shard_states.append(
                    {"backend": "numpy", "words": shard_words, "settled": settled, "cycles": cycles}
                )
            else:
                mask = (1 << width) - 1
                shard_states.append(
                    {
                        "backend": "bigint",
                        "values": [unpack_words_to_int(row) & mask for row in shard_words],
                        "settled": settled,
                        "cycles": cycles,
                    }
                )
        return shard_states

    # ---------------------------------------------------- inherited semantics
    # prepare(), resize(), plan_chain_resize(), samples(), chain_cycles and
    # the make_sampler/draw_sample_block integration are inherited verbatim
    # from BatchPowerSampler: resize() calls the overridden _build_engines()
    # (re-partitioning the pool) and _warm_up() (re-feeding the re-warm
    # randomness), so adaptive chain scaling crosses shard boundaries with
    # the exact RNG consumption of the in-process sampler.
