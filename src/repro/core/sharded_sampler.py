"""Process-sharded multi-chain power sampling with a deterministic sample merge.

:class:`ShardedPowerSampler` is the multi-process counterpart of
:class:`~repro.core.batch_sampler.BatchPowerSampler`: the ``num_chains``
lock-step chains are partitioned into word-aligned lane shards and each shard
is simulated by a persistent worker process owning a real
:class:`BatchPowerSampler` (with its own zero-delay and event-driven engine
instances) over just its lanes.  The DIPE flow is embarrassingly parallel at
the chain level, so the only hard part is determinism — and the design here
makes the merged sample stream **draw-for-draw identical** to the
single-process engine by construction:

* The *parent* owns the run's single RNG and the stimulus.  It draws latch
  randomisations and input patterns in exactly the order the in-process
  sampler would (one :meth:`~repro.stimulus.base.Stimulus.next_bits` call per
  clock cycle, one ``integers(0, 2, size=num_chains)`` call per latch), then
  scatters each worker its word-aligned lane slice.  Workers never draw
  randomness; they consume parent-fed pattern words through a FIFO feed.
  Chain *k* therefore sees the identical bit stream no matter how many
  workers exist — including ``num_workers=1`` and the in-process engine.
* Workers produce their shard's ``sample_block`` concurrently; the parent
  merges the per-shard ``(sweeps, shard_width)`` blocks with a deterministic
  lane-order interleave (``concatenate`` along the lane axis, then the same
  chain-major reshape the in-process sampler uses), so stopping decisions,
  adaptive-chain resizes and final estimates are pinned equal to
  :class:`BatchPowerSampler` with the same ``num_chains``.
* :meth:`get_state` gathers the per-shard simulator words and merges them —
  together with the parent's RNG bit-generator state and stimulus state —
  into the *same checkpoint schema* :class:`BatchPowerSampler` produces, so
  resumed sharded runs are bit-identical and checkpoints are interchangeable
  between the sharded and the in-process engine (pinned by tests).
* :meth:`resize` re-partitions the shards (workers rebuild their engines at
  the new widths and the parent re-feeds the re-warm randomness), so
  adaptive chain scaling crosses shard boundaries freely — growing past
  ``max_chains // num_workers`` or shrinking below the worker count simply
  changes the partition, idling surplus workers.

Shards are word-aligned (64 lanes per ``uint64`` word), so scattering a
pattern block and merging simulator state are pure word-slice operations; an
ensemble narrower than ``64 * num_workers`` lanes leaves the surplus workers
idle.

Workers receive the parent's prebuilt
:class:`~repro.circuits.program.CircuitProgram` (pickled through the process
boundary, or inherited on fork), so pool startup performs exactly one
circuit lowering no matter how many workers exist — worker engines bind the
shared tables instead of recompiling them (gated by
``benchmarks/test_bench_compile.py``).

Worker processes are spawn-safe (the worker entry point is a module-level
function fed picklable state), default to the platform's fastest start
method, and fall back to an in-process serial shard pool on platforms
without multiprocessing support — results are identical either way, only
wall-clock time changes.

**Fault tolerance.**  Every pool seat is a :class:`_SupervisedShard`: a
replay log wrapped around a raw transport (:class:`_ProcessShard` process,
:class:`_LocalShard` in-process, or
:class:`~repro.core.transport._SocketShard` remote TCP).  Workers are
deterministic functions of
the message stream they were fed — they own no RNG — so the supervisor
recovers a dead, hung or garbled worker by respawning the process and
replaying the logged messages since the last synchronized shard state,
re-receiving the replayed replies and delivering only the ones the caller
has not seen yet.  Merged samples are therefore *bit-identical with or
without faults* (pinned by ``tests/core/test_faults.py`` and
``benchmarks/test_bench_faults.py``).  Hangs are detected with a shared
heartbeat counter plus a per-collect deadline
(``EstimationConfig.worker_hang_timeout``); respawns back off exponentially
(``worker_retry_backoff``); a seat that keeps dying past
``worker_max_restarts`` consecutive recoveries degrades to a clean
in-process replica and the pool re-partitions onto the surviving workers at
the next round boundary.  Replay logs are truncated at every checkpoint and
every ``shard_sync_interval`` collect rounds.  Supervision incidents surface
as :class:`~repro.api.events.WorkerLost` /
:class:`~repro.api.events.WorkerRecovered` progress events via
:meth:`ShardedPowerSampler.take_fault_incidents`, and deterministic worker
*errors* (as opposed to transport failures) raise a typed
:class:`ShardWorkerError` carrying the shard index, pid, exit code and
remote traceback.

**Cross-host distribution.**  With ``EstimationConfig(worker_hosts=...)``
(or ``REPRO_SHARD_HOSTS``, or an explicit ``coordinator=``) the pool draws
its seats from remote ``repro shard-worker`` processes through a
:class:`~repro.core.transport.ShardCoordinator` instead of spawning local
processes.  The supervised contract is unchanged — remote workers consume
the same message stream over length-prefixed framed TCP, so connection
loss, partitions, slow links and truncated frames recover through the
identical destroy → backoff → reacquire → replay path (a failed seat
acquires a *fresh* member; the old worker, if it reconnects, is fenced by
its stale epoch and rejoins as new).  Membership is elastic: workers that
join mid-run are adopted — and seats whose restart budget is exhausted are
folded off — at the next round boundary via the same gather-checkpoint →
re-partition → restore path ``_heal_pool`` uses locally, surfacing as
:class:`~repro.api.events.WorkerJoined` /
:class:`~repro.api.events.WorkerLeft` events.  Merged samples stay
draw-for-draw identical to :class:`BatchPowerSampler` for any topology,
including runs where workers die and join mid-flight (pinned by
``tests/core/test_distributed.py`` and
``benchmarks/test_bench_distributed.py``).  See ``docs/distributed.md``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
import traceback
import weakref
from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.circuits.program import CircuitProgram
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.transport import ShardCoordinator
from repro.core.transport import WorkerDown as _WorkerDown
from repro.faults import FaultInjector, FaultSchedule, SimulatedWorkerDeath
from repro.faults import active_schedule as _ambient_fault_schedule
from repro.simulation.zero_delay import resolve_backend
from repro.stimulus.base import Stimulus
from repro.utils.bitpack import (
    bits_to_words,
    pack_int_to_words,
    unpack_words_to_int,
    words_per_width,
    words_to_bits,
)
from repro.utils.rng import RandomSource

__all__ = ["ShardWorkerError", "ShardedPowerSampler", "partition_chains"]

#: Clock cycles of pattern words shipped per feed message; bounds the size of
#: one pipe write while keeping the per-command message count small.
_FEED_CHUNK = 2048

#: Seconds between liveness checks while the supervisor waits for a reply;
#: bounds fault-detection latency without busy-polling the pipe.
_POLL_TICK = 0.05


class ShardWorkerError(RuntimeError):
    """A shard worker raised a deterministic error while handling a command.

    Unlike transport failures (death, hang, garbled reply) — which the
    supervisor recovers by respawn-and-replay — a worker *error* is a real
    exception out of the shard's own sampler code; replaying it would fail
    identically, so it is surfaced to the caller with full context instead.

    Attributes
    ----------
    shard_index:
        Pool seat (worker index) the failure came from.
    pid:
        Worker process id (``None`` for the in-process serial transport).
    exitcode:
        Worker process exit code at the time the error surfaced (usually
        ``None``: the process is still alive after reporting an error).
    remote_traceback:
        The worker-side traceback, formatted.
    reason:
        Short failure class, e.g. ``"remote-error"`` or
        ``"unrecoverable"``.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_index: int = -1,
        pid: int | None = None,
        exitcode: int | None = None,
        remote_traceback: str | None = None,
        reason: str = "remote-error",
    ):
        detail = f"{message} [shard {shard_index}, pid {pid}, exitcode {exitcode}, {reason}]"
        if remote_traceback:
            detail = f"{detail}\n{remote_traceback}"
        super().__init__(detail)
        self.shard_index = shard_index
        self.pid = pid
        self.exitcode = exitcode
        self.remote_traceback = remote_traceback
        self.reason = reason


def partition_chains(num_chains: int, num_workers: int) -> list[tuple[int, int]]:
    """Partition *num_chains* lanes into word-aligned shards, one per worker.

    Returns ``(lane_offset, width)`` per worker.  The underlying uint64 lane
    words are distributed as evenly as possible (so shard widths are
    multiples of 64 except possibly the last non-empty shard); workers beyond
    the available words receive ``width == 0`` and idle.  Worker 0 always
    holds chain 0 of a non-empty ensemble.
    """
    if num_chains < 1:
        raise ValueError("num_chains must be at least 1")
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    total_words = words_per_width(num_chains)
    base, extra = divmod(total_words, num_workers)
    shards: list[tuple[int, int]] = []
    word_offset = 0
    for worker in range(num_workers):
        words = base + (1 if worker < extra else 0)
        lane_offset = word_offset * 64
        width = max(0, min(num_chains - lane_offset, words * 64))
        shards.append((lane_offset, width))
        word_offset += words
    return shards


# --------------------------------------------------------------------- worker
class _PatternFeed:
    """FIFO of parent-generated pattern/latch word blocks for one shard."""

    def __init__(self) -> None:
        self._patterns: deque[np.ndarray] = deque()
        self._latches: deque[np.ndarray] = deque()

    def push_patterns(self, block: np.ndarray) -> None:
        """Queue a ``(cycles, num_inputs, num_words)`` block, one entry per cycle."""
        for index in range(block.shape[0]):
            self._patterns.append(block[index])

    def push_latches(self, words: np.ndarray) -> None:
        self._latches.append(words)

    def pop_pattern(self) -> np.ndarray:
        if not self._patterns:
            raise RuntimeError("shard pattern feed exhausted (parent under-fed a command)")
        return self._patterns.popleft()

    def pop_latches(self) -> np.ndarray:
        if not self._latches:
            raise RuntimeError("shard latch feed exhausted (parent under-fed a command)")
        return self._latches.popleft()


class _FeedStimulus(Stimulus):
    """Stimulus facade over a :class:`_PatternFeed` (consumes no RNG)."""

    def __init__(self, num_inputs: int, feed: _PatternFeed):
        super().__init__(num_inputs)
        self._feed = feed

    def next_bits(self, rng, width: int = 1) -> np.ndarray:
        return words_to_bits(self._feed.pop_pattern(), width)


class _ShardSampler(BatchPowerSampler):
    """A :class:`BatchPowerSampler` over one lane shard, driven by fed patterns.

    Identical to its base in every engine-facing respect; only the sources of
    randomness are replaced: input patterns pop from the parent-fed FIFO and
    the latch randomisation loads parent-drawn bits instead of consuming a
    local RNG stream.

    The parent resolves both simulator backends at the *full* ensemble width
    and forces them on every shard (``backend`` and ``event_backend`` arrive
    pre-resolved): a narrow shard must not drop to the big-int or scalar
    engine, whose floating-point accumulation order differs from the
    vectorized engines' — per-lane energies must come out of the same
    arithmetic the in-process full-width sampler uses, bit for bit.
    """

    def __init__(
        self,
        program: CircuitProgram,
        config,
        width: int,
        backend: str,
        event_backend: str,
        feed: _PatternFeed,
    ):
        self._feed = feed
        self._event_backend_request = event_backend
        super().__init__(
            program,
            _FeedStimulus(program.circuit.num_inputs, feed),
            config,
            rng=0,  # never drawn from — all randomness arrives through the feed
            num_chains=width,
            backend=backend,
        )

    def _next_pattern(self):
        words = self._feed.pop_pattern()
        if self._use_words:
            return words
        return [unpack_words_to_int(row) for row in words]

    def _warm_up(self, warmup_cycles: int | None = None) -> None:
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self._engine.load_latch_lanes(self._feed.pop_latches())
        self._engine.settle(self._next_pattern())
        self._prepared = True
        for _ in range(warmup):
            self._advance_one_cycle()

    def restart_from_random_state(self) -> None:
        self._engine.load_latch_lanes(self._feed.pop_latches())
        self._engine.settle(self._next_pattern())
        self._prepared = True


class _ShardServer:
    """Executes shard commands against a worker-local :class:`_ShardSampler`.

    The same server runs inside a worker process (via
    :func:`_shard_worker_main`) and in-process (via :class:`_LocalShard`), so
    the process pool and the serial fallback share one code path.
    """

    def __init__(self, program: CircuitProgram, config: EstimationConfig, backend: str):
        # The parent's prebuilt program crosses the process boundary whole
        # (or is inherited on fork), so shard engines never recompile it.
        self.program = program
        self.config = config
        self.backend_request = backend
        self.feed = _PatternFeed()
        self.sampler: _ShardSampler | None = None

    def _require_sampler(self) -> _ShardSampler:
        if self.sampler is None:
            raise RuntimeError("shard has no chains (width 0); command not expected")
        return self.sampler

    def handle(self, message: tuple):
        op = message[0]
        if op == "feed":
            self.feed.push_patterns(message[1])
            return None
        if op == "feed_latch":
            self.feed.push_latches(message[1])
            return None
        if op == "build":
            # Fresh engines at the new width — the shard-level equivalent of
            # BatchPowerSampler._build_engines during construction or resize.
            # Both backends arrive pre-resolved at the full ensemble width.
            width, zd_backend, event_backend = message[1], message[2], message[3]
            self.sampler = (
                _ShardSampler(
                    self.program, self.config, width, zd_backend, event_backend, self.feed
                )
                if width > 0
                else None
            )
            return self.sampler.backend if self.sampler is not None else None
        if op == "prepare":
            self._require_sampler().prepare(message[1])
            return None
        if op == "warm_up":
            self._require_sampler()._warm_up(message[1])
            return None
        if op == "restart":
            self._require_sampler().restart_from_random_state()
            return None
        if op == "advance":
            self._require_sampler().advance(message[1])
            return None
        if op == "sample_block":
            interval, sweeps = message[1], message[2]
            sampler = self._require_sampler()
            block = sampler.sample_block(interval, sweeps * sampler.num_chains)
            return block.reshape(sweeps, sampler.num_chains)
        if op == "collect_sequence":
            interval, length, want = message[1], message[2], message[3]
            sampler = self._require_sampler()
            if want:
                return sampler.collect_sequence(interval, length)
            # Measuring is state- and feed-neutral, so shards that do not own
            # chain 0 advance through the same cycles without resolving lanes.
            sampler.advance((interval + 1) * length)
            return None
        if op == "get_state":
            sampler = self._require_sampler()
            return {
                "engine": sampler._engine.get_state(),
                "prepared": sampler._prepared,
                "num_chains": sampler.num_chains,
            }
        if op == "set_state":
            payload = message[1]
            sampler = self._require_sampler()
            sampler._engine.set_state(payload["engine"])
            sampler._prepared = payload["prepared"]
            return None
        raise ValueError(f"unknown shard command {op!r}")


def _shard_worker_main(
    conn, program, config, backend_request, heartbeat=None, fault_plan=None
) -> None:
    """Worker process entry point: serve shard commands until "stop" or EOF."""
    server = _ShardServer(program, config, backend_request)
    injector = FaultInjector(fault_plan, mode="process")
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                conn.send(("ok", None))
                break
            command = injector.begin()
            injector.trip(command, "recv")
            try:
                reply = ("ok", server.handle(message))
            except BaseException:  # noqa: BLE001 — errors travel back to the parent
                reply = ("error", traceback.format_exc())
            injector.trip(command, "handle")
            conn.send("!garbled!" if injector.garbled(command) else reply)
            if heartbeat is not None:
                heartbeat.value += 1
            injector.trip(command, "reply")
    finally:
        conn.close()


class _ProcessShard:
    """Raw parent-side transport of one worker process (request/reply pipe).

    Pure plumbing: ships messages, receives wire replies, reports liveness
    (process state + a lock-free shared heartbeat the worker bumps after
    every handled command).  All bookkeeping, error typing and recovery live
    in :class:`_SupervisedShard`.
    """

    kind = "process"

    def __init__(self, ctx, program, config, backend_request, fault_plan=None):
        self._heartbeat = ctx.Value("Q", 0, lock=False)
        self.connection, child_conn = mp.Pipe()
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, program, config, backend_request, self._heartbeat, fault_plan),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode

    def _reaped_exitcode(self) -> int | None:
        # A pipe EOF can beat the dying child becoming waitable (its fds
        # close before the exit code is published), so reap with a bounded
        # join before reading — a dying process joins near-instantly.
        self.process.join(timeout=1.0)
        return self.process.exitcode

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def heartbeat_count(self) -> int:
        return int(self._heartbeat.value)

    def send_raw(self, message: tuple) -> None:
        try:
            self.connection.send(message)
        except (BrokenPipeError, ConnectionError, OSError, ValueError) as error:
            raise _WorkerDown("died", self.pid, self._reaped_exitcode()) from error

    def poll(self, timeout: float) -> bool:
        try:
            return self.connection.poll(timeout)
        except (EOFError, OSError):
            return True  # let recv_raw surface the failure

    def recv_raw(self):
        try:
            return self.connection.recv()
        except (EOFError, OSError) as error:
            raise _WorkerDown("died", self.pid, self._reaped_exitcode()) from error

    def destroy(self) -> None:
        """Tear the transport down hard (no stop handshake); never raises."""
        try:
            self.connection.close()
        except Exception:  # noqa: BLE001
            pass
        try:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)
        except Exception:  # noqa: BLE001 — shutdown-time join can fail harmlessly
            pass

    def stop(self) -> None:
        # Idempotent and silent: this also runs from a ``weakref.finalize``
        # callback during interpreter shutdown, where the pipe may already be
        # closed and parts of the multiprocessing machinery already torn
        # down — nothing here may raise or print.
        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        try:
            self.connection.send(("stop",))
            self.connection.recv()
        except Exception:  # noqa: BLE001 — peer already gone is fine
            pass
        self.destroy()


class _LocalShard:
    """In-process stand-in for a worker (serial fallback; same command path).

    Executes commands synchronously at ``send_raw`` time and queues the wire
    replies.  Injected ``kill``/``hang`` faults surface as
    :class:`~repro.faults.SimulatedWorkerDeath`, which this transport
    converts into the same :class:`_WorkerDown` signal a broken pipe
    produces — so the supervisor exercises the identical recovery path.
    """

    kind = "local"

    def __init__(self, program, config, backend_request, fault_plan=None):
        self._server = _ShardServer(program, config, backend_request)
        self._injector = FaultInjector(fault_plan, mode="local")
        self._replies: deque = deque()
        self._dead: str | None = None
        self._handled = 0

    pid: int | None = None
    exitcode: int | None = None

    def is_alive(self) -> bool:
        return self._dead is None

    def heartbeat_count(self) -> int:
        return self._handled

    def send_raw(self, message: tuple) -> None:
        if self._dead is not None:
            raise _WorkerDown(self._dead)
        if message[0] == "stop":
            self._replies.append(("ok", None))
            return
        command = self._injector.begin()
        try:
            self._injector.trip(command, "recv")
            try:
                reply = ("ok", self._server.handle(message))
            except Exception:  # noqa: BLE001 — mirror the process transport
                reply = ("error", traceback.format_exc())
            self._injector.trip(command, "handle")
            self._replies.append("!garbled!" if self._injector.garbled(command) else reply)
            self._handled += 1
            self._injector.trip(command, "reply")
        except SimulatedWorkerDeath as death:
            self._dead = death.reason
            raise _WorkerDown(death.reason) from death

    def poll(self, timeout: float) -> bool:
        return True  # replies (or the dead flag) are available synchronously

    def recv_raw(self):
        if self._replies:
            return self._replies.popleft()
        if self._dead is not None:
            raise _WorkerDown(self._dead)
        raise RuntimeError("local shard has no pending reply (supervisor bug)")

    def destroy(self) -> None:
        self._replies.clear()
        self._dead = "destroyed"
        self._server.sampler = None

    def stop(self) -> None:
        self._replies.clear()
        self._server.sampler = None


class _SupervisedShard:
    """One supervised seat of the shard pool: replay log + recovery policy.

    Wraps a raw transport and keeps the full message *history* since the
    seat's last ``build``/``set_state``/sync point, plus how many replies
    have already been *delivered* to the caller.  Because workers are
    deterministic functions of their fed message stream, any transport
    failure (death, hang past the deadline, garbled reply) is recovered by
    spawning a fresh transport, replaying the history and re-receiving the
    replies — delivering only the not-yet-seen tail, so the caller observes
    an uninterrupted, bit-identical reply stream.

    Consecutive recoveries of one in-flight round back off exponentially and
    are bounded by ``max_restarts``; past the bound the seat *degrades* to a
    clean in-process replica (restored the same way) and flags itself so the
    pool can re-partition onto the surviving workers at the next round
    boundary.  Deterministic worker errors are not recovered: they raise
    :class:`ShardWorkerError`.
    """

    def __init__(
        self,
        spawn: Callable[[int], object],
        shard_index: int,
        *,
        fallback: Callable[[], object],
        max_restarts: int,
        hang_timeout: float,
        backoff: float,
        on_incident: Callable[[dict], None] | None = None,
    ):
        self._spawn = spawn
        self._fallback = fallback
        self.shard_index = shard_index
        self.max_restarts = max_restarts
        self.hang_timeout = hang_timeout
        self.backoff = backoff
        self._on_incident = on_incident if on_incident is not None else (lambda incident: None)
        self.incarnation = 0
        self.respawns = 0
        self.degraded = False
        # Respawn-backoff jitter comes from a dedicated parent-owned stream
        # (seeded per seat, never the run RNG): simultaneous seat deaths must
        # not respawn in lockstep, and seeded fault tests must not see their
        # sample streams perturbed by supervision randomness.
        self._jitter_rng = np.random.default_rng((0xB0FF, shard_index))
        self._history: list[tuple] = []
        self._received: list = []
        self._delivered = 0
        self._failures = 0  # consecutive recoveries while the current round is in flight
        self._stopped = False
        self.transport = spawn(0)

    # Tests reach through the seat to the live pipe/process.
    @property
    def connection(self):
        return self.transport.connection

    @property
    def process(self):
        return self.transport.process

    def send(self, *message) -> None:
        op = message[0]
        if op == "build":
            # A build makes the worker a fresh function of what follows.
            self._history = [message]
            self._received = []
            self._delivered = 0
        elif op == "set_state":
            # The restored engine state fully determines the shard from here
            # on; everything between the build and now is dead history.
            # (set_state is only ever sent at a drained round boundary.)
            self._history = [self._history[0], message]
            self._received = [None]
            self._delivered = 1
        else:
            self._history.append(message)
        try:
            self.transport.send_raw(message)
        except _WorkerDown:
            pass  # collect() detects the failure, respawns and replays

    def mark_synced(self, state_payload: dict) -> None:
        """Truncate the replay log: *state_payload* reproduces the shard.

        Must be called at a drained round boundary, with the payload the
        worker just returned for ``get_state`` (minus ``num_chains``).  From
        now on recovery replays ``build`` + ``set_state`` instead of the
        whole history.
        """
        self._history = [self._history[0], ("set_state", state_payload)]
        self._received = [None, None]
        self._delivered = 2

    def collect(self) -> list:
        """Deliver one reply per outstanding request, recovering as needed."""
        total = len(self._history)
        while len(self._received) < total:
            try:
                self._received.append(self._receive_one())
            except _WorkerDown as failure:
                self._recover(failure)
        payloads = self._received[self._delivered : total]
        # Delivered payloads are never read again — keep placeholders only,
        # so the log does not pin every sample block in parent memory.
        self._received[:] = [None] * total
        self._delivered = total
        self._failures = 0
        return payloads

    def _receive_one(self):
        transport = self.transport
        last_beat = transport.heartbeat_count()
        deadline = time.monotonic() + self.hang_timeout
        while True:
            if transport.poll(_POLL_TICK):
                reply = transport.recv_raw()
                if (
                    not isinstance(reply, tuple)
                    or len(reply) != 2
                    or reply[0] not in ("ok", "error")
                ):
                    # The stream is no longer trustworthy: treat like death.
                    raise _WorkerDown("garbled", transport.pid, transport.exitcode)
                status, payload = reply
                if status == "error":
                    raise ShardWorkerError(
                        "shard worker failed",
                        shard_index=self.shard_index,
                        pid=transport.pid,
                        exitcode=transport.exitcode,
                        remote_traceback=payload,
                        reason="remote-error",
                    )
                return payload
            if not transport.is_alive():
                raise _WorkerDown("died", transport.pid, transport.exitcode)
            beat = transport.heartbeat_count()
            if beat != last_beat:
                # The worker is making progress through queued feed
                # messages — extend the deadline rather than declaring a
                # hang mid-burst.
                last_beat = beat
                deadline = time.monotonic() + self.hang_timeout
            elif time.monotonic() >= deadline:
                raise _WorkerDown("hung", transport.pid, transport.exitcode)

    def _recover(self, failure: _WorkerDown) -> None:
        began = time.perf_counter()
        self._on_incident(
            {
                "kind": "lost",
                "worker": self.shard_index,
                "pid": failure.pid,
                "exitcode": failure.exitcode,
                "reason": failure.reason,
            }
        )
        self.transport.destroy()
        self._failures += 1
        if self._failures > self.max_restarts:
            # Unrecoverable seat: fall back to a clean in-process replica
            # (no fault injection) so the round completes, and flag the seat
            # for re-partitioning at the next boundary.
            self.degraded = True
            transport = self._fallback()
        else:
            # Full jitter: a uniform draw from [0, base * 2**(n-1)] (capped).
            # Deterministic exponential backoff makes seats that died
            # together retry together forever; jitter de-synchronises them.
            ceiling = min(self.backoff * (2 ** (self._failures - 1)), 2.0)
            if ceiling > 0.0:
                time.sleep(float(self._jitter_rng.uniform(0.0, ceiling)))
            self.incarnation += 1
            try:
                transport = self._spawn(self.incarnation)
            except (OSError, PermissionError, RuntimeError, AssertionError):
                self.degraded = True
                transport = self._fallback()
        self.transport = transport
        self.respawns += 1
        self._received = []
        try:
            for message in self._history:
                transport.send_raw(message)
        except _WorkerDown:
            pass  # the replacement died mid-replay; collect() loops again
        self._on_incident(
            {
                "kind": "recovered",
                "worker": self.shard_index,
                "pid": transport.pid,
                "respawns": self._failures,
                "replayed": len(self._history),
                "seconds": time.perf_counter() - began,
                "degraded": self.degraded,
            }
        )

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        try:
            self.transport.stop()
        except Exception:  # noqa: BLE001 — runs from weakref.finalize too
            pass


def _shutdown_pool(handles: list, coordinator: ShardCoordinator | None = None) -> None:
    """Stop every shard handle; never raises (runs from weakref.finalize)."""
    for handle in handles:
        try:
            handle.stop()
        except Exception:  # noqa: BLE001 — one bad handle must not strand the rest
            pass
    if coordinator is not None:
        try:
            coordinator.close()
        except Exception:  # noqa: BLE001
            pass


# --------------------------------------------------------------------- parent
class ShardedPowerSampler(BatchPowerSampler):
    """Multi-chain power sampler sharded across a pool of worker processes.

    Drop-in replacement for :class:`BatchPowerSampler` (same constructor
    signature plus the worker knobs, same public API): with the same seed and
    ``num_chains`` it produces identical samples, stopping decisions,
    checkpoints and estimates for *any* worker count.  Selected by
    :func:`~repro.core.batch_sampler.make_sampler` when
    ``EstimationConfig(num_workers > 1)``.

    Parameters
    ----------
    circuit, stimulus, config, rng, num_chains, backend:
        As for :class:`BatchPowerSampler`.
    num_workers:
        Size of the worker pool; defaults to ``config.num_workers``.
    start_method:
        Multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``"serial"`` for the in-process fallback pool;
        defaults to the ``REPRO_SHARD_START_METHOD`` environment variable or
        the platform's fastest available method.  Platforms where worker
        processes cannot be created fall back to ``"serial"`` transparently.
    fault_schedule:
        Optional :class:`~repro.faults.FaultSchedule` injected into the
        worker pool (testing/chaos only); defaults to the ambient schedule
        from :func:`repro.faults.inject` or ``REPRO_FAULTS``.
    coordinator:
        An externally-owned :class:`~repro.core.transport.ShardCoordinator`
        to draw remote TCP workers from.  Defaults to ``None``, in which
        case ``config.worker_hosts`` (or ``REPRO_SHARD_HOSTS``) makes the
        sampler bind and own a coordinator of its own; with neither, the
        pool runs on local process pipes.
    """

    def __init__(
        self,
        circuit,
        stimulus: Stimulus,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        num_chains: int | None = None,
        backend: str | None = None,
        num_workers: int | None = None,
        start_method: str | None = None,
        fault_schedule: FaultSchedule | None = None,
        coordinator: ShardCoordinator | None = None,
    ):
        config = config or EstimationConfig()
        self.num_workers = config.num_workers if num_workers is None else num_workers
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self._start_method = (
            start_method
            if start_method is not None
            else os.environ.get("REPRO_SHARD_START_METHOD") or None
        )
        self._fault_schedule = (
            fault_schedule if fault_schedule is not None else _ambient_fault_schedule()
        )
        # A deque because the coordinator's membership thread appends
        # join/leave incidents concurrently with the parent draining them.
        self._fault_incidents: deque[dict] = deque()
        self._coordinator = coordinator
        self._owns_coordinator = False
        self._listen_address = config.worker_hosts or os.environ.get("REPRO_SHARD_HOSTS") or None
        self._next_seat = 0
        self._rounds_since_sync = 0
        self._syncing = False
        self._healing = False
        self._handles: list | None = None
        self._finalizer = None
        super().__init__(
            circuit, stimulus, config, rng=rng, num_chains=num_chains, backend=backend
        )

    # ------------------------------------------------------------------- pool
    def _supervise(self, index: int, spawn) -> _SupervisedShard:
        """Wrap a raw-transport factory in a supervised pool seat.

        Seat closures (here and in the spawn factories) deliberately capture
        program/config/transport objects, never ``self``: the seats are held
        alive by the ``weakref.finalize`` shutdown callback's arguments, so a
        closure back-reference to the sampler would root it and reduce the
        finalizer to an interpreter-exit hook — remote workers would never be
        released when an estimator drops its sampler without closing it.
        """
        program, config, backend = self.program, self.config, self._backend_request
        return _SupervisedShard(
            spawn,
            index,
            # The degradation fallback is a clean local replica: never
            # injected with faults, so an exhausted retry budget cannot loop.
            fallback=lambda: _LocalShard(program, config, backend),
            max_restarts=config.worker_max_restarts,
            hang_timeout=config.worker_hang_timeout,
            backoff=config.worker_retry_backoff,
            on_incident=self._fault_incidents.append,
        )

    def _local_seat(self, index: int) -> _SupervisedShard:
        program, config, backend = self.program, self.config, self._backend_request
        schedule = self._fault_schedule
        return self._supervise(
            index,
            lambda incarnation, index=index: _LocalShard(
                program,
                config,
                backend,
                schedule.plan_for(index, incarnation) if schedule is not None else None,
            ),
        )

    def _socket_seat(self, index: int) -> _SupervisedShard:
        """A supervised seat whose transports are acquired from the coordinator.

        Every (re)spawn acquires the oldest pending remote member and ships
        it the program/config and the seat's fault plan in the ``assign``
        frame; a recovery therefore replays onto a *fresh* member (the
        failed one, if it reconnects, is fenced and rejoins as new).  An
        acquire timeout raises ``RuntimeError``, which the supervisor treats
        like a failed process spawn: the seat degrades to a clean local
        replica and the pool re-partitions at the next round boundary.
        """
        coordinator = self._coordinator
        program, config, backend = self.program, self.config, self._backend_request
        schedule = self._fault_schedule

        def spawn(incarnation: int, index: int = index):
            return coordinator.acquire(
                index,
                incarnation,
                program,
                config,
                backend,
                fault_plan=(
                    schedule.plan_for(index, incarnation) if schedule is not None else None
                ),
                timeout=config.worker_join_timeout,
            )

        return self._supervise(index, spawn)

    def _take_seat_index(self) -> int:
        # Seat indices are never reused across elastic joins, so fault plans
        # and incident streams stay unambiguous about which seat they mean.
        index = self._next_seat
        self._next_seat += 1
        return index

    def _spawn_socket_pool(self) -> list:
        if self._coordinator is None:
            token = self.config.worker_auth_token or os.environ.get("REPRO_SHARD_TOKEN", "")
            self._coordinator = ShardCoordinator(
                self._listen_address,
                token,
                on_incident=self._fault_incidents.append,
            )
            self._owns_coordinator = True
        elif self._coordinator.on_incident is None:
            # Workers may have joined the pre-started coordinator already;
            # attach_observer replays their buffered join incidents.
            self._coordinator.attach_observer(self._fault_incidents.append)
        joined = self._coordinator.wait_for_members(
            self.num_workers, timeout=self.config.worker_join_timeout
        )
        if joined == 0:
            if self._owns_coordinator:
                self._coordinator.close()
            raise RuntimeError(
                f"no shard workers joined {self._coordinator.address} within "
                f"{self.config.worker_join_timeout:.1f}s; start them with "
                f"'repro shard-worker --connect {self._coordinator.address}'"
            )
        # Elastic membership: start on whoever showed up.  Fewer members than
        # requested shrinks the pool; extra members stay pending and are
        # adopted at the first round boundary.  Either way the merged samples
        # are pinned equal to the in-process engine.
        self.num_workers = min(self.num_workers, joined)
        return [self._socket_seat(self._take_seat_index()) for _ in range(self.num_workers)]

    def _spawn_pool(self) -> list:
        if self._coordinator is not None or self._listen_address:
            return self._spawn_socket_pool()
        if self._start_method == "serial":
            return [self._local_seat(index) for index in range(self.num_workers)]
        if self._start_method is not None:
            ctx = mp.get_context(self._start_method)
        elif sys.platform == "linux" and "fork" in mp.get_all_start_methods():
            # Fork is the cheap path (no re-import per worker) and safe on
            # Linux; macOS forks crash in Accelerate/ObjC runtimes, which is
            # why CPython made spawn the default there — honour that default
            # everywhere else.
            ctx = mp.get_context("fork")
        else:
            ctx = mp.get_context()
        program, config, backend = self.program, self.config, self._backend_request
        schedule = self._fault_schedule
        handles: list = []
        try:
            for index in range(self.num_workers):
                handles.append(
                    self._supervise(
                        index,
                        lambda incarnation, index=index: _ProcessShard(
                            ctx,
                            program,
                            config,
                            backend,
                            schedule.plan_for(index, incarnation)
                            if schedule is not None
                            else None,
                        ),
                    )
                )
        except (OSError, PermissionError, RuntimeError, AssertionError):
            # Sandboxes (or daemonic parents) that cannot create processes:
            # identical results from the in-process pool, one process.
            _shutdown_pool(handles)
            return [self._local_seat(index) for index in range(self.num_workers)]
        return handles

    def _build_engines(self) -> None:
        """(Re)partition the ensemble and rebuild every shard's engines."""
        if self._handles is None:
            if self.config.power_simulator == "event-driven":
                # Warm the configured delay schedule before the program
                # crosses the process boundary, so spawned workers
                # deserialize the quantization instead of each repeating it.
                self.program.delay_schedule(self.config.delay_model)
            self._handles = self._spawn_pool()
            self._finalizer = weakref.finalize(
                self,
                _shutdown_pool,
                self._handles,
                self._coordinator if self._owns_coordinator else None,
            )
        self._shards = partition_chains(self.num_chains, self.num_workers)
        self._num_words = words_per_width(self.num_chains)
        # No in-process engines: every engine-facing base-class method is
        # overridden to delegate to the shard pool.
        self._engine = None
        self._power = None
        self._event_engine = None
        self._use_words = True
        # Backends are resolved at the FULL ensemble width and forced on all
        # shards: a narrow shard falling back to the big-int or scalar engine
        # would change the floating-point accumulation order of its lane
        # energies and break the bit-identical merge.
        zd_backend = resolve_backend(self._backend_request, self.num_chains)
        event_backend = "scalar" if self.num_chains == 1 else "numpy"
        for handle, (_, width) in zip(self._handles, self._shards):
            handle.send("build", width, zd_backend, event_backend)
        self._shard_backends = [replies[0] for replies in self._collect_all()]
        self._rounds_since_sync = 0

    def close(self) -> None:
        """Shut the worker pool down (also runs on garbage collection)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._handles = None

    def __enter__(self) -> "ShardedPowerSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- messaging
    def _active(self) -> list[tuple[object, int, int, int, int, int]]:
        """(handle, worker, lane_offset, width, word_offset, word_count) per live shard."""
        active = []
        for worker, (handle, (offset, width)) in enumerate(zip(self._handles, self._shards)):
            if width > 0:
                active.append(
                    (handle, worker, offset, width, offset // 64, words_per_width(width))
                )
        return active

    def _collect_all(self) -> list[list]:
        replies = [handle.collect() for handle in self._handles]
        self._after_round()
        return replies

    def _collect_active(self) -> list[list]:
        replies = [entry[0].collect() for entry in self._active()]
        self._after_round()
        return replies

    # ------------------------------------------------------------ supervision
    def _after_round(self) -> None:
        """Round-boundary housekeeping: periodic replay-log truncation."""
        if self._syncing or self._healing:
            return
        self._rounds_since_sync += 1
        if self._rounds_since_sync >= max(1, self.config.shard_sync_interval):
            self._sync_shards()

    def _sync_shards(self) -> None:
        """Snapshot every live shard and truncate the replay logs.

        Bounds recovery replay (and parent memory) to at most
        ``shard_sync_interval`` rounds of traffic; costs one ``get_state``
        round trip per shard.  Checkpoints (:meth:`get_state`) sync for
        free.
        """
        self._syncing = True
        try:
            active = self._active()
            for entry in active:
                entry[0].send("get_state")
            for entry in active:
                state = entry[0].collect()[-1]
                entry[0].mark_synced({"engine": state["engine"], "prepared": state["prepared"]})
        finally:
            self._syncing = False
            self._rounds_since_sync = 0

    def _heal_pool(self) -> None:
        """Re-partition the ensemble at a round boundary when membership changed.

        Two triggers, one mechanism: a seat that exhausted its restart
        budget finished its round on a clean in-process replica and must be
        folded off; a remote worker that joined the coordinator since the
        last boundary is waiting for a seat.  Both re-partition through the
        ordinary checkpoint machinery (state gather → re-partition →
        restore), which is bit-identical because the merged state is
        lane-ordered regardless of the partitioning and
        ``get_state``/``set_state`` consume no RNG.
        """
        if self._handles is None or self._healing:
            return
        pending = self._coordinator.pending_count() if self._coordinator is not None else 0
        degraded = [seat for seat in self._handles if seat.degraded]
        if not degraded and not pending:
            return
        if degraded and len(degraded) == len(self._handles) and not pending:
            # Nowhere to go: every seat already runs in-process and no remote
            # member is waiting.  Keep the degraded pool.
            return
        self._healing = True
        try:
            state = self.get_state()
            survivors = [seat for seat in self._handles if not seat.degraded]
            adopted: list[_SupervisedShard] = []
            if self._coordinator is not None:
                while self._coordinator.pending_count() > 0:
                    try:
                        adopted.append(self._socket_seat(self._take_seat_index()))
                    except RuntimeError:
                        break  # the pending member vanished mid-adoption
            if not survivors and not adopted:
                return  # adoption failed after all; keep the degraded pool
            for seat in degraded:
                seat.stop()
                self._fault_incidents.append(
                    {
                        "kind": "left",
                        "worker": f"seat-{seat.shard_index}",
                        "pid": getattr(seat.transport, "pid", None),
                        "epoch": seat.incarnation,
                        "reason": "exhausted-restarts",
                    }
                )
            # In-place: the weakref.finalize shutdown callback holds this
            # exact list object.
            self._handles[:] = survivors + adopted
            self.num_workers = len(self._handles)
            self._build_engines()
            self.set_state(state)
        finally:
            self._healing = False

    def take_fault_incidents(self) -> list[dict]:
        """Drain supervision incidents (worker losses/recoveries) since last call.

        Each incident is a dict whose ``kind`` is ``"lost"``,
        ``"recovered"``, ``"joined"`` or ``"left"`` plus context fields;
        :class:`~repro.core.dipe.DipeEstimator` turns them into
        :class:`~repro.api.events.WorkerLost` /
        :class:`~repro.api.events.WorkerRecovered` /
        :class:`~repro.api.events.WorkerJoined` /
        :class:`~repro.api.events.WorkerLeft` progress events.  Drained
        with ``popleft`` because the coordinator's membership thread may
        append concurrently.
        """
        incidents: list[dict] = []
        while True:
            try:
                incidents.append(self._fault_incidents.popleft())
            except IndexError:
                return incidents

    @property
    def worker_restarts(self) -> int:
        """Total worker respawns performed by the supervision layer."""
        return sum(seat.respawns for seat in self._handles or [])

    def _scatter_patterns(self, cycles: int) -> None:
        """Draw *cycles* input patterns from the run RNG and feed shard slices.

        Consumes the RNG stream exactly like *cycles* successive
        ``stimulus.next_bits(rng, num_chains)`` calls (the in-process
        sampler's draw order), then word-slices the packed block per shard.
        """
        active = self._active()
        for start in range(0, cycles, _FEED_CHUNK):
            chunk = min(_FEED_CHUNK, cycles - start)
            bits = self.stimulus.next_bits_block(self.rng, self.num_chains, chunk)
            words = bits_to_words(bits, self._num_words)
            for handle, _, _, _, word_offset, word_count in active:
                shard_words = words[:, :, word_offset : word_offset + word_count]
                handle.send("feed", np.ascontiguousarray(shard_words))

    def _scatter_latches(self) -> None:
        """Draw the latch randomisation and feed shard slices.

        One ``integers(0, 2, size=num_chains)`` call per latch, in latch
        order — the exact stream ``randomize_state`` consumes in-process.
        """
        num_latches = self.circuit.num_latches
        bits = np.empty((num_latches, self.num_chains), dtype=np.uint8)
        for index in range(num_latches):
            bits[index] = self.rng.integers(0, 2, size=self.num_chains, dtype="uint8")
        words = bits_to_words(bits, self._num_words)
        for handle, _, _, _, word_offset, word_count in self._active():
            handle.send(
                "feed_latch",
                np.ascontiguousarray(words[:, word_offset : word_offset + word_count]),
            )

    # ------------------------------------------------------------- properties
    @property
    def backend(self) -> str:
        """Backend the equivalent in-process sampler would resolve (state format)."""
        return resolve_backend(self._backend_request, self.num_chains)

    def shard_progress(self):
        """Current :class:`~repro.api.events.ShardProgress` tuple (for events)."""
        from repro.api.events import ShardProgress

        return tuple(
            ShardProgress(
                worker=index, num_chains=width, lane_offset=min(offset, self.num_chains)
            )
            for index, (offset, width) in enumerate(self._shards)
        )

    # ----------------------------------------------------------------- set-up
    def _warm_up(self, warmup_cycles: int | None = None) -> None:
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self._heal_pool()
        self._scatter_latches()
        self._scatter_patterns(1 + warmup)
        for entry in self._active():
            entry[0].send("prepare", warmup)
        self._collect_active()
        self._prepared = True
        self.cycles_simulated += warmup

    def restart_from_random_state(self) -> None:
        self._heal_pool()
        self._scatter_latches()
        self._scatter_patterns(1)
        for entry in self._active():
            entry[0].send("restart")
        self._collect_active()
        self._prepared = True

    # ------------------------------------------------------------------ steps
    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._require_prepared()
        if cycles == 0:
            return
        self._heal_pool()
        self._scatter_patterns(cycles)
        for entry in self._active():
            entry[0].send("advance", cycles)
        self._collect_active()
        self.cycles_simulated += cycles

    def _sample_sweeps(self, interval: int, sweeps: int) -> np.ndarray:
        """Run *sweeps* measured sweeps; return the merged (sweeps, num_chains) block."""
        self._require_prepared()
        self._heal_pool()
        self._scatter_patterns(sweeps * (interval + 1))
        for entry in self._active():
            entry[0].send("sample_block", interval, sweeps)
        parts = [replies[-1] for replies in self._collect_active()]
        self.cycles_simulated += sweeps * (interval + 1)
        return np.concatenate(parts, axis=1)

    def measure_cycle(self) -> np.ndarray:
        self._require_prepared()
        return self._sample_sweeps(0, 1).reshape(-1)

    def measure_cycle_total(self) -> float:
        """Lane-resolved measurement summed over the merged ensemble."""
        return float(self.measure_cycle().sum())

    def next_samples(self, interval: int) -> np.ndarray:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self._require_prepared()
        return self._sample_sweeps(interval, 1).reshape(-1)

    def sample_block(self, interval: int, min_count: int) -> np.ndarray:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        sweeps = -(-min_count // self.num_chains)
        return self._sample_sweeps(interval, sweeps).reshape(-1)

    def collect_sequence(self, interval: int, length: int) -> list[float]:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if length < 1:
            raise ValueError("length must be at least 1")
        self._require_prepared()
        self._heal_pool()
        self._scatter_patterns((interval + 1) * length)
        active = self._active()
        for position, entry in enumerate(active):
            # Chain 0 lives in the first non-empty shard; only it resolves lanes.
            entry[0].send("collect_sequence", interval, length, position == 0)
        sequence = self._collect_active()[0][-1]
        self.cycles_simulated += (interval + 1) * length
        return sequence

    # ------------------------------------------------------------------ state
    def get_state(self) -> dict:
        """Gather per-shard states into the :class:`BatchPowerSampler` schema.

        The returned snapshot is interchangeable with an in-process
        sampler's: it restores into either engine and the continued runs are
        bit-identical (the parent's RNG consumed the same stream the
        in-process sampler would have).
        """
        self._heal_pool()
        active = self._active()
        for entry in active:
            entry[0].send("get_state")
        states = [replies[-1] for replies in self._collect_active()]
        # A checkpoint is a free sync point: each shard's snapshot reproduces
        # it exactly, so the replay logs truncate to build + set_state.
        for entry, state in zip(active, states):
            entry[0].mark_synced({"engine": state["engine"], "prepared": state["prepared"]})
        self._rounds_since_sync = 0
        return {
            "rng": self.rng.bit_generator.state,
            "num_chains": self.num_chains,
            "cycles_simulated": self.cycles_simulated,
            "prepared": self._prepared,
            "engine": self._merge_engine_states([state["engine"] for state in states]),
            "stimulus": self.stimulus.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot from either the sharded or the in-process sampler."""
        chains = state.get("num_chains", self.num_chains)
        if chains != self.num_chains:
            self.num_chains = chains
            self._build_engines()
        self.rng.bit_generator.state = state["rng"]
        self.cycles_simulated = state["cycles_simulated"]
        self._prepared = state["prepared"]
        shard_states = self._split_engine_state(state["engine"])
        for entry, shard_state in zip(self._active(), shard_states):
            entry[0].send("set_state", {"engine": shard_state, "prepared": self._prepared})
        self._collect_active()
        self.stimulus.set_state(state["stimulus"])

    def _merge_engine_states(self, states: Sequence[dict]) -> dict:
        """Merge per-shard engine snapshots into one full-width snapshot."""
        columns = []
        for state, (_, _, _, width, _, word_count) in zip(states, self._active()):
            if state["backend"] == "numpy":
                columns.append(np.asarray(state["words"], dtype=np.uint64))
            else:
                columns.append(
                    np.stack(
                        [pack_int_to_words(value, word_count) for value in state["values"]]
                    )
                )
        words = np.concatenate(columns, axis=1)
        settled = states[0]["settled"]
        cycles = states[0]["cycles"]
        if self.backend != "bigint":
            return {"backend": "numpy", "words": words, "settled": settled, "cycles": cycles}
        return {
            "backend": "bigint",
            "values": [unpack_words_to_int(row) for row in words],
            "settled": settled,
            "cycles": cycles,
        }

    def _split_engine_state(self, engine_state: dict) -> list[dict]:
        """Slice a full-width engine snapshot into per-shard snapshots."""
        if engine_state["backend"] == "numpy":
            words = np.asarray(engine_state["words"], dtype=np.uint64)
        else:
            words = np.stack(
                [
                    pack_int_to_words(value, self._num_words)
                    for value in engine_state["values"]
                ]
            )
        settled = engine_state["settled"]
        cycles = engine_state["cycles"]
        shard_states = []
        for _, worker, _, width, word_offset, word_count in self._active():
            shard_words = np.ascontiguousarray(words[:, word_offset : word_offset + word_count])
            if self._shard_backends[worker] != "bigint":
                shard_states.append(
                    {"backend": "numpy", "words": shard_words, "settled": settled, "cycles": cycles}
                )
            else:
                mask = (1 << width) - 1
                shard_states.append(
                    {
                        "backend": "bigint",
                        "values": [unpack_words_to_int(row) & mask for row in shard_words],
                        "settled": settled,
                        "cycles": cycles,
                    }
                )
        return shard_states

    # ---------------------------------------------------- inherited semantics
    # prepare(), resize(), plan_chain_resize(), samples(), chain_cycles and
    # the make_sampler/draw_sample_block integration are inherited verbatim
    # from BatchPowerSampler: resize() calls the overridden _build_engines()
    # (re-partitioning the pool) and _warm_up() (re-feeding the re-warm
    # randomness), so adaptive chain scaling crosses shard boundaries with
    # the exact RNG consumption of the in-process sampler.
