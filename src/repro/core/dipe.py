"""DIPE: distribution-independent statistical power estimation (Fig. 1 flow).

:class:`DipeEstimator` implements the complete flow of the paper:

1. load the circuit and electrical models, warm the FSM up;
2. determine the independence interval with the sequential runs-test
   procedure (Fig. 2);
3. generate random power samples with the two-phase simulation scheme (cheap
   zero-delay simulation during the interval, the configured power engine on
   the sampled cycle);
4. feed the growing sample into a distribution-independent stopping criterion
   and terminate when the requested accuracy and confidence are reached.

The convenience function :func:`estimate_average_power` wraps the class for
one-line use; the class itself exposes the intermediate artefacts (interval
selection diagnostics, the raw sample) for analysis.
"""

from __future__ import annotations

import time

from repro.core.batch_sampler import BatchPowerSampler, draw_samples, make_sampler
from repro.core.config import EstimationConfig
from repro.core.interval import select_independence_interval
from repro.core.results import PowerEstimate
from repro.core.sampler import PowerSampler
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.stats.stopping import make_stopping_criterion
from repro.stimulus.base import Stimulus
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource


class DipeEstimator:
    """Average-power estimator for sequential circuits (the paper's DIPE tool).

    Parameters
    ----------
    circuit:
        A :class:`CompiledCircuit` or a :class:`Netlist` (compiled on the fly).
    stimulus:
        Primary-input pattern generator; defaults to mutually independent
        inputs with probability 0.5, the paper's experimental setting.
    config:
        Estimation configuration; defaults to the paper's settings.
    rng:
        Seed or generator controlling every random choice of the run.
    """

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
    ):
        if isinstance(circuit, Netlist):
            circuit = CompiledCircuit.from_netlist(circuit)
        self.circuit = circuit
        self.config = config or EstimationConfig()
        self.stimulus = stimulus or BernoulliStimulus(circuit.num_inputs, 0.5)
        self.sampler: PowerSampler | BatchPowerSampler = make_sampler(
            circuit, self.stimulus, self.config, rng=rng
        )
        self.stopping_criterion = make_stopping_criterion(
            self.config.stopping_criterion,
            max_relative_error=self.config.max_relative_error,
            confidence=self.config.confidence,
            min_samples=self.config.min_samples,
        )

    def estimate(self) -> PowerEstimate:
        """Run the full DIPE flow and return the :class:`PowerEstimate`."""
        config = self.config
        power_model = config.power_model
        start_time = time.perf_counter()

        self.sampler.prepare(config.warmup_cycles)
        interval_result = select_independence_interval(self.sampler, config)
        interval = interval_result.interval

        samples: list[float] = []
        decision = self.stopping_criterion.evaluate(samples)
        while len(samples) < config.max_samples:
            added = 0
            while added < config.check_interval:
                # One measured sweep yields one sample per chain; the chains'
                # draws are interleaved into the growing sample.
                new_samples = draw_samples(self.sampler, interval)
                samples.extend(new_samples)
                added += len(new_samples)
            decision = self.stopping_criterion.evaluate(samples)
            if decision.should_stop:
                break

        elapsed = time.perf_counter() - start_time
        return PowerEstimate(
            circuit_name=self.circuit.name,
            method="dipe",
            average_power_w=power_model.cycle_power(decision.estimate),
            lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
            upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
            relative_half_width=decision.relative_half_width,
            sample_size=len(samples),
            independence_interval=interval,
            cycles_simulated=self.sampler.cycles_simulated,
            elapsed_seconds=elapsed,
            stopping_criterion=self.stopping_criterion.name,
            accuracy_met=decision.should_stop,
            interval_selection=interval_result,
            samples_switched_capacitance_f=tuple(samples),
        )


def estimate_average_power(
    circuit: CompiledCircuit | Netlist,
    stimulus: Stimulus | None = None,
    config: EstimationConfig | None = None,
    rng: RandomSource = None,
) -> PowerEstimate:
    """One-call DIPE estimation of a circuit's average power.

    Equivalent to constructing a :class:`DipeEstimator` and calling
    :meth:`~DipeEstimator.estimate`.
    """
    return DipeEstimator(circuit, stimulus=stimulus, config=config, rng=rng).estimate()
