"""DIPE: distribution-independent statistical power estimation (Fig. 1 flow).

:class:`DipeEstimator` implements the complete flow of the paper:

1. load the circuit and electrical models, warm the FSM up;
2. determine the independence interval with the sequential runs-test
   procedure (Fig. 2);
3. generate random power samples with the two-phase simulation scheme (cheap
   zero-delay simulation during the interval, the configured power engine on
   the sampled cycle);
4. feed the growing sample into a distribution-independent stopping criterion
   and terminate when the requested accuracy and confidence are reached.

The flow executes incrementally: :meth:`DipeEstimator.run` is a generator
that yields typed :class:`~repro.api.events.ProgressEvent` objects — run
start, interval-selection diagnostics, a stopping-criterion verdict after
every batch of new samples, and a final
:class:`~repro.api.events.EstimateCompleted` carrying the
:class:`~repro.core.results.PowerEstimate`.  :meth:`DipeEstimator.estimate`
is a thin driver over the stream; :meth:`DipeEstimator.make_checkpoint` /
``run(resume_from=...)`` freeze and resume a half-finished run with an
identical final estimate.

The convenience function :func:`estimate_average_power` is the legacy
one-line entry point; new code should prefer
:func:`repro.api.run_job` with a :class:`~repro.api.JobSpec`.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.api.checkpoint import RunCheckpoint
from repro.api.events import (
    ChainsResized,
    EstimateCompleted,
    IntervalSelected,
    ProgressEvent,
    RunStarted,
    SampleProgress,
    WorkerJoined,
    WorkerLeft,
    WorkerLost,
    WorkerRecovered,
)
from repro.api.protocol import StreamingEstimator
from repro.api.registry import register_estimator
from repro.circuits.program import as_compiled_circuit
from repro.core.batch_sampler import BatchPowerSampler, draw_sample_block, make_sampler
from repro.core.config import EstimationConfig
from repro.core.interval import select_independence_interval
from repro.core.results import PowerEstimate
from repro.core.sampler import PowerSampler
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.stats.stopping import GroupedStoppingCriterion, make_stopping_criterion
from repro.stimulus.base import Stimulus
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource


def _drain_worker_events(sampler, circuit_name, method, samples_drawn):
    """Convert the sampler's queued supervision incidents into typed events.

    Samplers without a supervision layer (no ``take_fault_incidents``) yield
    nothing, so the estimator works unchanged on in-process samplers.
    """
    take = getattr(sampler, "take_fault_incidents", None)
    if take is None:
        return
    for incident in take():
        common = dict(
            circuit=circuit_name,
            method=method,
            samples_drawn=samples_drawn,
            cycles_simulated=sampler.cycles_simulated,
            worker=incident.get("worker", 0),
            pid=incident.get("pid"),
        )
        kind = incident.get("kind")
        if kind == "lost":
            yield WorkerLost(
                exitcode=incident.get("exitcode"),
                reason=incident.get("reason", "died"),
                **common,
            )
        elif kind == "recovered":
            yield WorkerRecovered(
                respawns=incident.get("respawns", 1),
                replayed_commands=incident.get("replayed", 0),
                recovery_seconds=incident.get("seconds", 0.0),
                degraded=incident.get("degraded", False),
                **common,
            )
        elif kind == "joined":
            yield WorkerJoined(
                epoch=incident.get("epoch", 0),
                host=incident.get("host", ""),
                **{**common, "worker": str(incident.get("worker", ""))},
            )
        elif kind == "left":
            yield WorkerLeft(
                epoch=incident.get("epoch", 0),
                reason=incident.get("reason", "disconnected"),
                **{**common, "worker": str(incident.get("worker", ""))},
            )


@register_estimator("dipe")
class DipeEstimator(StreamingEstimator):
    """Average-power estimator for sequential circuits (the paper's DIPE tool).

    Parameters
    ----------
    circuit:
        A :class:`CompiledCircuit` or a :class:`Netlist` (compiled on the fly).
    stimulus:
        Primary-input pattern generator; defaults to mutually independent
        inputs with probability 0.5, the paper's experimental setting.
    config:
        Estimation configuration; defaults to the paper's settings.
    rng:
        Seed or generator controlling every random choice of the run.
    """

    method = "dipe"

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
    ):
        circuit = as_compiled_circuit(circuit)
        self.circuit = circuit
        self.config = config or EstimationConfig()
        self.stimulus = stimulus or BernoulliStimulus(circuit.num_inputs, 0.5)
        self.sampler: PowerSampler | BatchPowerSampler = make_sampler(
            circuit, self.stimulus, self.config, rng=rng
        )
        # Lane-coupled variance-reduction stimuli (repro.variance) correlate
        # the draws within each measured sweep; per-sample i.i.d. confidence
        # intervals would be invalid, so the criterion evaluates sweep means
        # instead.  The grouped inner criterion counts sweeps, hence the
        # scaled-down min_samples floor.
        lanes_dependent = getattr(self.stimulus, "lanes_dependent", False)
        group = getattr(self.sampler, "num_chains", 1) if lanes_dependent else 1
        if lanes_dependent and self.config.adaptive_chains:
            raise ValueError(
                "adaptive_chains cannot be combined with a lane-coupled "
                "(lanes_dependent) stimulus: resizing would change the sweep "
                "group width mid-run and invalidate the grouped confidence "
                "interval"
            )
        self.sample_group_width = group
        inner = make_stopping_criterion(
            self.config.stopping_criterion,
            max_relative_error=self.config.max_relative_error,
            confidence=self.config.confidence,
            min_samples=(
                max(16, -(-self.config.min_samples // group))
                if group > 1
                else self.config.min_samples
            ),
        )
        self.stopping_criterion = (
            GroupedStoppingCriterion(inner, group) if group > 1 else inner
        )

    # -------------------------------------------------------------- streaming
    def run(self, resume_from: RunCheckpoint | None = None) -> Iterator[ProgressEvent]:
        """Execute the DIPE flow incrementally, yielding progress events.

        The stream's ``samples_drawn`` is monotonically non-decreasing and
        its final event is an :class:`EstimateCompleted` whose ``estimate``
        equals the :meth:`estimate` return value.  Closing the generator
        aborts the run; :meth:`make_checkpoint` (valid between events)
        freezes it so ``run(resume_from=checkpoint)`` on a fresh estimator
        continues the identical trajectory.
        """
        config = self.config
        power_model = config.power_model
        circuit_name = self.circuit.name
        start_time = time.perf_counter()
        elapsed_before = 0.0

        if resume_from is None:
            yield RunStarted(
                circuit=circuit_name, method=self.method, samples_drawn=0, cycles_simulated=0
            )
            self.sampler.prepare(config.warmup_cycles)
            interval_result = select_independence_interval(self.sampler, config)
            samples: list[float] = []
        else:
            self._validate_checkpoint(resume_from)
            if resume_from.interval_selection is None:
                raise ValueError("DIPE checkpoints must carry the interval selection")
            elapsed_before = resume_from.elapsed_seconds
            self.sampler.set_state(resume_from.sampler_state)
            interval_result = resume_from.interval_selection
            samples = list(resume_from.samples)

        self._samples = samples
        self._interval_result = interval_result
        self._elapsed_seconds = elapsed_before + (time.perf_counter() - start_time)
        interval = interval_result.interval
        yield from _drain_worker_events(
            self.sampler, circuit_name, self.method, len(samples)
        )
        yield IntervalSelected(
            circuit=circuit_name,
            method=self.method,
            samples_drawn=len(samples),
            cycles_simulated=self.sampler.cycles_simulated,
            interval=interval,
            converged=interval_result.converged,
            num_trials=interval_result.num_trials,
            selection=interval_result,
        )

        # Imported lazily: the repro.variance package's control-variate
        # estimator subclasses DipeEstimator, so a module-level import here
        # would be circular.
        from repro.variance.accumulators import PairedMeanAccumulator

        adaptive = config.adaptive_chains and isinstance(self.sampler, BatchPowerSampler)
        accumulator = PairedMeanAccumulator(self.sample_group_width)
        accumulator.extend(samples)
        decision = self.stopping_criterion.evaluate(samples)
        while not decision.should_stop and len(samples) < config.max_samples:
            if adaptive:
                desired = self.sampler.plan_chain_resize(decision)
                if desired != self.sampler.num_chains:
                    previous = self.sampler.num_chains
                    self.sampler.resize(desired)
                    yield ChainsResized(
                        circuit=circuit_name,
                        method=self.method,
                        samples_drawn=len(samples),
                        cycles_simulated=self.sampler.cycles_simulated,
                        previous_chains=previous,
                        num_chains=desired,
                        relative_half_width=decision.relative_half_width,
                    )
            # One measured sweep yields one sample per chain; the chains'
            # draws are interleaved chain-major into the growing sample by
            # one vectorized block draw per stopping-criterion check.
            block = draw_sample_block(self.sampler, interval, config.check_interval)
            samples.extend(block)
            accumulator.extend(block)
            decision = self.stopping_criterion.evaluate(samples)
            self._elapsed_seconds = elapsed_before + (time.perf_counter() - start_time)
            yield from _drain_worker_events(
                self.sampler, circuit_name, self.method, len(samples)
            )
            yield SampleProgress(
                circuit=circuit_name,
                method=self.method,
                samples_drawn=len(samples),
                cycles_simulated=self.sampler.cycles_simulated,
                running_mean_w=power_model.cycle_power(max(decision.estimate, 0.0)),
                lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
                upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
                relative_half_width=decision.relative_half_width,
                accuracy_met=decision.should_stop,
                num_workers=getattr(self.sampler, "num_workers", 1),
                effective_sample_size=(
                    accumulator.effective_sample_size
                    if self.sample_group_width > 1
                    else None
                ),
                shards=(
                    self.sampler.shard_progress()
                    if hasattr(self.sampler, "shard_progress")
                    else ()
                ),
            )

        elapsed = elapsed_before + (time.perf_counter() - start_time)
        estimate = PowerEstimate(
            circuit_name=circuit_name,
            method=self.method,
            average_power_w=power_model.cycle_power(decision.estimate),
            lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
            upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
            relative_half_width=decision.relative_half_width,
            sample_size=len(samples),
            independence_interval=interval,
            cycles_simulated=self.sampler.cycles_simulated,
            elapsed_seconds=elapsed,
            stopping_criterion=self.stopping_criterion.name,
            accuracy_met=decision.should_stop,
            interval_selection=interval_result,
            effective_sample_size=(
                accumulator.effective_sample_size if self.sample_group_width > 1 else None
            ),
            samples_switched_capacitance_f=tuple(samples),
        )
        yield from _drain_worker_events(
            self.sampler, circuit_name, self.method, len(samples)
        )
        yield EstimateCompleted(
            circuit=circuit_name,
            method=self.method,
            samples_drawn=len(samples),
            cycles_simulated=self.sampler.cycles_simulated,
            estimate=estimate,
        )

def estimate_average_power(
    circuit: CompiledCircuit | Netlist,
    stimulus: Stimulus | None = None,
    config: EstimationConfig | None = None,
    rng: RandomSource = None,
) -> PowerEstimate:
    """One-call DIPE estimation of a circuit's average power.

    Equivalent to constructing a :class:`DipeEstimator` and calling
    :meth:`~DipeEstimator.estimate`.  Kept as a compatibility shim; new code
    should build a :class:`repro.api.JobSpec` and call
    :func:`repro.api.run_job`, which adds registries, streaming progress and
    batch execution on top of the same flow.
    """
    return DipeEstimator(circuit, stimulus=stimulus, config=config, rng=rng).estimate()
