"""Cross-host shard transport: framed TCP, membership, heartbeats, fencing.

This module extends the supervised shard-pool machinery of
:mod:`repro.core.sharded_sampler` across machine boundaries.  It keeps the
same contract the process-pipe transport satisfies — workers are pure
deterministic consumers of the parent-fed message stream, so any transport
failure is recoverable by respawn-and-replay without changing one merged
sample — and adds the pieces a network needs:

* **Framing** — every message travels as a 4-byte big-endian length header
  followed by the body, so a half-delivered write is detectable (a short
  read at EOF surfaces as a ``"truncated"`` failure, never as silent data
  loss).  Post-handshake frames are pickled ``(kind, payload)`` tuples;
  handshake frames are JSON so a socket is never unpickled before it has
  authenticated.
* **Handshake + token auth** — a connecting worker sends a JSON ``hello``
  carrying a shared secret token; the coordinator answers ``welcome`` (with
  a freshly assigned, strictly monotone *epoch*) or ``reject``.  Tokens are
  compared with :func:`hmac.compare_digest`.
* **Fencing** — the epoch doubles as a fencing token: a worker that offers a
  prior epoch when reconnecting (a stale incarnation resuming after the
  coordinator declared it dead) is rejected with reason ``"fenced"`` and
  must rejoin as a fresh member.  Recovery is therefore always replay onto a
  fresh seat, never resumption of stale worker state.
* **Heartbeats** — assigned workers stream ``heartbeat`` frames carrying
  their handled-command count, feeding the same progress-based hang
  detection the process transport gets from its shared counter; pending
  (unassigned) workers heartbeat the coordinator, which prunes members
  silent past ``member_timeout``.
* **Elastic membership** — :class:`ShardCoordinator` keeps a FIFO registry
  of authenticated pending workers.  The sampler acquires seats from it
  (:meth:`ShardCoordinator.acquire` ships the circuit program, config and
  backend in an ``assign`` frame), re-acquires on failure, and adopts
  newly-joined members at round boundaries.

:func:`run_shard_worker` is the remote counterpart (exposed as
``repro shard-worker``): an outer join/rejoin loop around the same
:class:`~repro.core.sharded_sampler._ShardServer` command loop the process
workers run, plus the injected network-fault behaviours
(drop-connection, partition, slow-link, truncated-frame) used by the chaos
suite.  See ``docs/distributed.md`` for the deployment guide and the
failure matrix.

Security note: after authentication the wire format is pickle, which is
code-execution-equivalent — the token gates message deserialization, so
treat it as a secret and run coordinator and workers only on networks where
every host is trusted.
"""

from __future__ import annotations

import hmac
import json
import os
import pickle
import select
import socket
import struct
import threading
import time
from collections import deque
from typing import Callable

__all__ = [
    "FrameError",
    "ShardCoordinator",
    "WorkerDown",
    "recv_frame",
    "run_shard_worker",
    "send_frame",
]

#: Length-prefix framing: 4-byte big-endian unsigned body length.
_HEADER = struct.Struct(">I")

#: Hard ceiling on one frame body; a header past it means a garbled stream
#: (random bytes decode to multi-gigabyte lengths), not a huge message.
MAX_FRAME_BYTES = 1 << 28

#: Seconds a handshake (hello/welcome exchange) may take end to end.
_HANDSHAKE_TIMEOUT = 10.0

#: Coordinator serve-loop tick: bounds join/prune/acquire latency.
_SERVE_TICK = 0.1

#: Default seconds an injected ``partition`` blackholes the link (heartbeats
#: included) when the action gives no duration — long enough to trip any
#: test-sized ``worker_hang_timeout``.
_DEFAULT_PARTITION_SECONDS = 6.0

#: Default per-reply delay of an injected ``slow-link`` (must stay far below
#: any reasonable hang timeout: a slow link is degraded, not dead).
_DEFAULT_SLOW_LINK_SECONDS = 0.02


class WorkerDown(Exception):
    """A shard transport failed (recoverable by respawn-and-replay).

    Raised by every raw transport (process pipe, in-process serial, TCP
    socket) towards :class:`~repro.core.sharded_sampler._SupervisedShard`,
    which recovers by acquiring a fresh transport and replaying its logged
    message history.  ``reason`` is a short failure class (``"died"``,
    ``"hung"``, ``"garbled"``, ``"truncated"``, ``"partitioned"``, ...).
    """

    def __init__(self, reason: str, pid: int | None = None, exitcode: int | None = None):
        super().__init__(reason)
        self.reason = reason
        self.pid = pid
        self.exitcode = exitcode


class FrameError(RuntimeError):
    """The framed byte stream is unusable (closed, truncated or garbled)."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"frame error: {reason}" + (f" ({detail})" if detail else ""))
        self.reason = reason


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly *count* bytes; raise :class:`FrameError` on early EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise FrameError("closed" if remaining == count and not chunks else "truncated")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_body(sock: socket.socket, body: bytes) -> None:
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_body(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError("oversized", f"{length} bytes")
    return _recv_exact(sock, length)


def send_frame(sock: socket.socket, kind: str, payload: object = None) -> None:
    """Send one pickled ``(kind, payload)`` frame (post-handshake wire format)."""
    _send_body(sock, pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL))


def recv_frame(sock: socket.socket) -> tuple[str, object]:
    """Receive one pickled frame; raises :class:`FrameError` on a bad stream."""
    body = _recv_body(sock)
    try:
        kind, payload = pickle.loads(body)
    except Exception as error:  # noqa: BLE001 — any unpickling failure is garbling
        raise FrameError("garbled", repr(error)) from error
    return kind, payload


def _send_json_frame(sock: socket.socket, obj: dict) -> None:
    """Send a JSON frame (handshake only: parseable before authentication)."""
    _send_body(sock, json.dumps(obj).encode("utf-8"))


def _recv_json_frame(sock: socket.socket) -> dict:
    body = _recv_body(sock)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError("garbled", repr(error)) from error
    if not isinstance(obj, dict):
        raise FrameError("garbled", "handshake frame is not an object")
    return obj


class _FrameBuffer:
    """Incremental frame parser for the parent's non-blocking receive path."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Append *data*; return the bodies of every newly completed frame."""
        self._buffer.extend(data)
        bodies: list[bytes] = []
        while len(self._buffer) >= _HEADER.size:
            (length,) = _HEADER.unpack(self._buffer[: _HEADER.size])
            if length > MAX_FRAME_BYTES:
                raise FrameError("oversized", f"{length} bytes")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            bodies.append(bytes(self._buffer[_HEADER.size : end]))
            del self._buffer[:end]
        return bodies


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"`` into a ``(host, port)`` pair, validating both."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"address must look like 'host:port', got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address must end in an integer port, got {address!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port must lie in [0, 65535], got {port}")
    return host, port


class _Member:
    """One authenticated, not-yet-assigned worker connection."""

    def __init__(self, sock: socket.socket, epoch: int, worker: str, pid: int | None, host: str):
        self.sock = sock
        self.epoch = epoch
        self.worker = worker
        self.pid = pid
        self.host = host
        self.last_seen = time.monotonic()


class ShardCoordinator:
    """Listener + membership registry for remote TCP shard workers.

    Accepts worker connections on *bind* (``"host:port"``; port 0 picks an
    ephemeral port, readable from :attr:`address`), authenticates each
    ``hello`` against the shared *token*, assigns strictly monotone epochs,
    and keeps the authenticated-but-unassigned workers in a FIFO *pending*
    registry ordered by epoch.  A background thread services joins, consumes
    pending members' heartbeats and prunes members silent past
    *member_timeout*.  Membership changes are reported through
    *on_incident* as ``{"kind": "joined"|"left", ...}`` dicts — the same
    channel the shard supervisor uses, so they surface as
    :class:`~repro.api.events.WorkerJoined` /
    :class:`~repro.api.events.WorkerLeft` progress events.

    The sampler side calls :meth:`wait_for_members` during pool
    construction, :meth:`acquire` to turn the oldest pending member into a
    live :class:`_SocketShard` seat (shipping program/config/backend and the
    seat's fault plan in the ``assign`` frame), and :meth:`pending_count` at
    round boundaries to adopt newly-joined workers elastically.
    """

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        token: str = "",
        *,
        heartbeat_interval: float = 0.5,
        member_timeout: float | None = None,
        on_incident: Callable[[dict], None] | None = None,
    ):
        host, port = parse_address(bind)
        self.token = token
        self.heartbeat_interval = heartbeat_interval
        self.member_timeout = (
            member_timeout if member_timeout is not None else max(6 * heartbeat_interval, 3.0)
        )
        self.on_incident = on_incident
        self.fenced_rejects = 0
        self._unobserved: list[dict] = []
        self._pending: list[_Member] = []
        self._epoch = 0
        self._lock = threading.Lock()
        self._joined = threading.Condition(self._lock)
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._host, self._port = self._listener.getsockname()[:2]
        self._thread = threading.Thread(
            target=self._serve, name="shard-coordinator", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- properties
    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        """The bound ``host:port`` (with the resolved ephemeral port)."""
        return f"{self._host}:{self._port}"

    def _incident(self, incident: dict) -> None:
        sink = self.on_incident
        if sink is None:
            # Members can join before the sampler attaches its observer (a
            # pre-started coordinator handed to the pool): keep the incident
            # for attach_observer instead of dropping it.
            with self._lock:
                if self.on_incident is None:
                    self._unobserved.append(incident)
                    return
                sink = self.on_incident
        try:
            sink(incident)
        except Exception:  # noqa: BLE001 — observers must not kill the serve loop
            pass

    def attach_observer(self, sink: Callable[[dict], None]) -> None:
        """Attach *sink*, first replaying incidents emitted while unobserved.

        The backlog replays under the membership lock so a concurrent join
        cannot overtake it — *sink* must therefore not call back into the
        coordinator (the pool's incident sink is a plain ``deque.append``).
        """
        with self._lock:
            backlog, self._unobserved = self._unobserved, []
            self.on_incident = sink
            for incident in backlog:
                try:
                    sink(incident)
                except Exception:  # noqa: BLE001 — same contract as _incident
                    pass

    # ------------------------------------------------------------- serve loop
    def _serve(self) -> None:
        while not self._closed:
            with self._lock:
                watched = [member.sock for member in self._pending]
            try:
                readable, _, _ = select.select([self._listener] + watched, [], [], _SERVE_TICK)
            except (OSError, ValueError):
                continue  # a socket was closed under us; rebuild the watch list
            for sock in readable:
                if self._closed:
                    return
                if sock is self._listener:
                    self._accept_one()
                else:
                    self._pump_member(sock)
            self._prune_members()

    def _accept_one(self) -> None:
        try:
            sock, peer = self._listener.accept()
        except OSError:
            return
        try:
            sock.settimeout(_HANDSHAKE_TIMEOUT)
            hello = _recv_json_frame(sock)
            if not hmac.compare_digest(str(hello.get("token", "")), self.token):
                _send_json_frame(sock, {"kind": "reject", "reason": "bad-token"})
                sock.close()
                return
            if hello.get("epoch") is not None:
                # A stale incarnation trying to resume after the supervisor
                # declared it dead: fence it off.  Recovery is always replay
                # onto a fresh seat — the worker must rejoin from scratch.
                with self._lock:
                    self.fenced_rejects += 1
                _send_json_frame(sock, {"kind": "reject", "reason": "fenced"})
                sock.close()
                return
            with self._lock:
                self._epoch += 1
                epoch = self._epoch
            member = _Member(
                sock,
                epoch,
                worker=str(hello.get("worker") or f"worker-{epoch}"),
                pid=hello.get("pid"),
                host=peer[0],
            )
            _send_json_frame(
                sock,
                {
                    "kind": "welcome",
                    "epoch": epoch,
                    "heartbeat_interval": self.heartbeat_interval,
                },
            )
            sock.settimeout(None)
        except (FrameError, OSError):
            try:
                sock.close()
            except OSError:
                pass
            return
        with self._joined:
            self._pending.append(member)
            self._joined.notify_all()
        self._incident(
            {
                "kind": "joined",
                "worker": member.worker,
                "pid": member.pid,
                "epoch": member.epoch,
                "host": member.host,
            }
        )

    def _pump_member(self, sock: socket.socket) -> None:
        with self._lock:
            member = next((m for m in self._pending if m.sock is sock), None)
        if member is None:
            return  # acquired between select and read; the seat owns it now
        try:
            kind, _ = recv_frame(sock)
        except (FrameError, OSError):
            self._drop_member(member, "disconnected")
            return
        if kind == "heartbeat":
            member.last_seen = time.monotonic()

    def _prune_members(self) -> None:
        deadline = time.monotonic() - self.member_timeout
        with self._lock:
            silent = [m for m in self._pending if m.last_seen < deadline]
        for member in silent:
            self._drop_member(member, "timed-out")

    def _drop_member(self, member: _Member, reason: str) -> None:
        with self._lock:
            if member not in self._pending:
                return
            self._pending.remove(member)
        try:
            member.sock.close()
        except OSError:
            pass
        self._incident(
            {
                "kind": "left",
                "worker": member.worker,
                "pid": member.pid,
                "epoch": member.epoch,
                "reason": reason,
            }
        )

    # -------------------------------------------------------------- sampler API
    def pending_count(self) -> int:
        """Authenticated workers waiting for a seat."""
        with self._lock:
            return len(self._pending)

    def wait_for_members(self, count: int, timeout: float) -> int:
        """Block until *count* members are pending (or *timeout*); return how many are."""
        deadline = time.monotonic() + timeout
        with self._joined:
            while len(self._pending) < count and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._joined.wait(remaining)
            return len(self._pending)

    def acquire(
        self,
        seat_index: int,
        incarnation: int,
        program,
        config,
        backend_request: str,
        *,
        fault_plan=None,
        timeout: float = 30.0,
    ) -> "_SocketShard":
        """Assign the oldest pending member to a pool seat; return its transport.

        FIFO by epoch keeps seat assignment deterministic given a join
        order.  The ``assign`` frame ships everything a process worker would
        receive at spawn (program, config, backend request, fault plan), so
        the remote :class:`~repro.core.sharded_sampler._ShardServer` starts
        from the same clean state and the supervisor's replayed ``build`` is
        the first history message either way.  Raises ``RuntimeError`` when
        no member joins within *timeout* (the supervisor degrades the seat
        to a local replica, exactly like a failed process spawn).
        """
        deadline = time.monotonic() + timeout
        with self._joined:
            while not self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    raise RuntimeError(
                        f"no shard worker joined within {timeout:.1f}s "
                        f"(coordinator {self.address}, seat {seat_index})"
                    )
                self._joined.wait(min(remaining, _SERVE_TICK))
            member = min(self._pending, key=lambda m: m.epoch)
            self._pending.remove(member)
        shard = _SocketShard(
            member.sock,
            pid=member.pid,
            epoch=member.epoch,
            worker=member.worker,
            send_timeout=max(float(config.worker_hang_timeout), 1.0),
        )
        try:
            shard.send_assign(
                {
                    "seat": seat_index,
                    "incarnation": incarnation,
                    "program": program,
                    "config": config,
                    "backend": backend_request,
                    "fault_plan": fault_plan,
                }
            )
        except WorkerDown:
            shard.destroy()
            raise RuntimeError(
                f"shard worker {member.worker!r} (epoch {member.epoch}) "
                "dropped during seat assignment"
            ) from None
        return shard

    def close(self) -> None:
        """Stop the serve loop and close every socket; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._joined:
            pending, self._pending = self._pending, []
            self._joined.notify_all()
        for member in pending:
            try:
                member.sock.close()
            except OSError:
                pass
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=2.0)


class _SocketShard:
    """Raw parent-side transport of one remote worker (framed TCP).

    Duck-types the raw-transport protocol the supervisor drives
    (``send_raw`` / ``poll`` / ``recv_raw`` / ``heartbeat_count`` /
    ``is_alive`` / ``destroy`` / ``stop``), so
    :class:`~repro.core.sharded_sampler._SupervisedShard` treats a remote
    worker exactly like a process or serial one.  Replies and heartbeat
    frames are demultiplexed in :meth:`poll`; the progress counter advances
    on every received reply and every heartbeat reporting new handled
    commands, feeding the supervisor's hang detection.  Any framing or
    socket failure latches a terminal failure reason which
    :meth:`recv_raw` re-raises as :class:`WorkerDown`.
    """

    kind = "socket"

    def __init__(
        self,
        sock: socket.socket,
        *,
        pid: int | None,
        epoch: int,
        worker: str,
        send_timeout: float,
    ):
        self._sock = sock
        self.pid = pid
        self.epoch = epoch
        self.worker = worker
        self.exitcode: int | None = None
        self._buffer = _FrameBuffer()
        self._replies: deque = deque()
        self._progress = 0
        self._handled_seen = 0
        self._failure: str | None = None
        self._stopped = False
        sock.settimeout(send_timeout)

    def is_alive(self) -> bool:
        return self._failure is None

    def heartbeat_count(self) -> int:
        return self._progress

    def _fail(self, reason: str) -> None:
        if self._failure is None:
            self._failure = reason
        try:
            self._sock.close()
        except OSError:
            pass

    def send_assign(self, spec: dict) -> None:
        """Ship the seat-assignment frame (not part of the supervised history)."""
        try:
            send_frame(self._sock, "assign", spec)
        except (socket.timeout, OSError) as error:
            self._fail("partitioned" if isinstance(error, socket.timeout) else "died")
            raise WorkerDown(self._failure, self.pid) from error

    def send_raw(self, message: tuple) -> None:
        if self._failure is not None:
            raise WorkerDown(self._failure, self.pid)
        try:
            send_frame(self._sock, "cmd", message)
        except (socket.timeout, OSError) as error:
            # A blocked sendall means the peer stopped draining: a partition
            # (or a dead peer with full buffers).  Either way the stream is
            # unusable — latch the failure and let the supervisor replay.
            self._fail("partitioned" if isinstance(error, socket.timeout) else "died")
            raise WorkerDown(self._failure, self.pid) from error

    def poll(self, timeout: float) -> bool:
        if self._replies or self._failure is not None:
            return True
        try:
            readable, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            self._fail("died")
            return True
        if not readable:
            return False
        try:
            chunk = self._sock.recv(1 << 16)
        except (socket.timeout, OSError):
            self._fail("died")
            return True
        if not chunk:
            # EOF: buffered partial bytes mean a frame was cut mid-flight.
            self._fail("truncated" if self._buffer.pending else "died")
            return True
        try:
            bodies = self._buffer.feed(chunk)
        except FrameError as error:
            self._fail(error.reason)
            return True
        for body in bodies:
            try:
                kind, payload = pickle.loads(body)
            except Exception:  # noqa: BLE001 — undecodable frame = garbled stream
                self._fail("garbled")
                return True
            if kind == "reply":
                self._replies.append(payload)
                self._progress += 1
            elif kind == "heartbeat":
                handled = int(payload.get("handled", 0)) if isinstance(payload, dict) else 0
                if handled > self._handled_seen:
                    self._handled_seen = handled
                    self._progress += 1
        return bool(self._replies or self._failure is not None)

    def recv_raw(self):
        if self._replies:
            return self._replies.popleft()
        if self._failure is not None:
            raise WorkerDown(self._failure, self.pid)
        # The supervisor only calls recv_raw after poll() returned True, so
        # spin briefly rather than assert — a heartbeat may have woken poll.
        if self.poll(0.0) and self._replies:
            return self._replies.popleft()
        raise WorkerDown(self._failure or "died", self.pid)

    def destroy(self) -> None:
        """Tear the link down hard; the worker will rejoin as a fresh member."""
        self._fail("destroyed")

    def stop(self) -> None:
        # Idempotent and silent (also runs from weakref.finalize at
        # interpreter shutdown).  A polite stop lets the worker reply, drop
        # the connection and rejoin the coordinator's pending registry.
        if self._stopped:
            return
        self._stopped = True
        try:
            send_frame(self._sock, "cmd", ("stop",))
            self._sock.settimeout(1.0)
            recv_frame(self._sock)
        except Exception:  # noqa: BLE001 — peer already gone is fine
            pass
        self._fail("stopped")


# ------------------------------------------------------------------ worker side
class _SessionEnd(Exception):
    """Internal: the worker must drop this connection and rejoin."""

    def __init__(self, reason: str, rejoin: bool = True):
        super().__init__(reason)
        self.reason = reason
        self.rejoin = rejoin


def _connect(address: tuple[str, int], token: str, worker_id: str, epoch: int | None):
    """One join attempt: connect + hello/welcome handshake.

    Returns ``(sock, welcome)`` on success, the string ``"fenced"`` when the
    coordinator fenced a stale-epoch resume (the caller must rejoin fresh),
    or ``None`` when the coordinator is unreachable or rejected the token.
    """
    try:
        sock = socket.create_connection(address, timeout=_HANDSHAKE_TIMEOUT)
    except OSError:
        return None
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_HANDSHAKE_TIMEOUT)
        _send_json_frame(
            sock,
            {"token": token, "worker": worker_id, "pid": os.getpid(), "epoch": epoch},
        )
        answer = _recv_json_frame(sock)
    except (FrameError, OSError):
        sock.close()
        return None
    if answer.get("kind") == "welcome":
        sock.settimeout(None)
        return sock, answer
    sock.close()
    return "fenced" if answer.get("reason") == "fenced" else None


class _HeartbeatPump:
    """Background thread streaming heartbeat frames for one worker session."""

    def __init__(self, sock: socket.socket, send_lock: threading.Lock, interval: float):
        self._sock = sock
        self._send_lock = send_lock
        self._interval = max(interval, 0.05)
        self._stop = threading.Event()
        self.handled = 0
        self._thread = threading.Thread(target=self._run, name="shard-heartbeat", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    send_frame(self._sock, "heartbeat", {"handled": self.handled})
            except OSError:
                return  # connection gone; the session loop notices on its own

    def stop(self) -> None:
        self._stop.set()


def run_shard_worker(
    address: str,
    token: str = "",
    *,
    worker_id: str | None = None,
    fault_schedule=None,
    heartbeat_interval: float = 0.5,
    max_reconnects: int = 64,
    reconnect_backoff: float = 0.2,
) -> dict:
    """Serve shard commands to a coordinator at *address* until it goes away.

    The standalone remote worker process (``repro shard-worker``): joins the
    coordinator, heartbeats while pending, and — once assigned a seat —
    builds a :class:`~repro.core.sharded_sampler._ShardServer` from the
    shipped program/config and serves the supervised command stream.  Every
    connection loss (including injected drop-connection and truncated-frame
    faults) first attempts a resume with its stale epoch, gets fenced, and
    rejoins as a fresh member — so the fencing path is exercised on every
    reconnect.  Returns a summary dict
    (``sessions``/``assignments``/``handled``/``fenced``) once
    *max_reconnects* consecutive join attempts fail (coordinator gone).

    *fault_schedule* (or, when it is ``None``, the plan shipped in the
    ``assign`` frame, or the ambient ``REPRO_FAULTS`` schedule) drives the
    chaos suite; see :mod:`repro.faults` for the socket-mode action kinds.
    """
    # Imported lazily: sharded_sampler imports this module at the top level.
    from repro.faults import schedule_from_env

    host_port = parse_address(address)
    name = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    ambient = fault_schedule if fault_schedule is not None else schedule_from_env()
    summary = {"worker": name, "sessions": 0, "assignments": 0, "handled": 0, "fenced": 0}
    epoch: int | None = None
    misses = 0
    while misses <= max_reconnects:
        joined = _connect(host_port, token, name, epoch)
        if joined == "fenced":
            summary["fenced"] += 1
            epoch = None  # stale incarnation confirmed dead: rejoin fresh
            continue
        if joined is None:
            epoch = None
            misses += 1
            time.sleep(reconnect_backoff)
            continue
        misses = 0
        sock, welcome = joined
        epoch = int(welcome["epoch"])
        summary["sessions"] += 1
        try:
            _serve_session(sock, welcome, summary, ambient)
        except _SessionEnd as end:
            if not end.rejoin:
                break
        finally:
            try:
                sock.close()
            except OSError:
                pass
    return summary


def _serve_session(sock, welcome, summary, ambient_schedule) -> None:
    """Serve one coordinator connection: pending → assigned → command loop."""
    from repro.core.sharded_sampler import _ShardServer
    from repro.faults import FaultInjector, InjectedNetworkFault

    send_lock = threading.Lock()
    pump = _HeartbeatPump(
        sock, send_lock, float(welcome.get("heartbeat_interval", 0.5))
    )
    server: _ShardServer | None = None
    injector = FaultInjector(None, mode="socket")
    slow_link = 0.0

    def network_effect(fault: InjectedNetworkFault) -> None:
        nonlocal slow_link
        if fault.kind == "drop-connection":
            raise _SessionEnd("dropped")
        if fault.kind == "truncated-frame":
            # A frame header promising more bytes than ever arrive: the
            # parent must detect the cut (EOF with a partial buffer), not
            # consume garbage.
            try:
                with send_lock:
                    sock.sendall(_HEADER.pack(1 << 20) + b"half a frame")
            except OSError:
                pass
            raise _SessionEnd("truncated")
        if fault.kind == "partition":
            # Blackhole the link both ways: hold the send lock so even the
            # heartbeat pump goes silent, exactly like a dropped route.
            with send_lock:
                time.sleep(fault.seconds or _DEFAULT_PARTITION_SECONDS)
            return
        if fault.kind == "slow-link":
            slow_link = fault.seconds or _DEFAULT_SLOW_LINK_SECONDS
            return
        raise _SessionEnd(fault.kind)

    def trip(command: int, point: str) -> None:
        try:
            injector.trip(command, point)
        except InjectedNetworkFault as fault:
            network_effect(fault)

    try:
        while True:
            try:
                kind, payload = recv_frame(sock)
            except (FrameError, OSError):
                raise _SessionEnd("connection-lost") from None
            if kind == "assign":
                summary["assignments"] += 1
                plan = payload.get("fault_plan")
                if plan is None and ambient_schedule is not None:
                    plan = ambient_schedule.plan_for(
                        payload["seat"], payload["incarnation"]
                    )
                injector = FaultInjector(plan, mode="socket")
                server = _ShardServer(payload["program"], payload["config"], payload["backend"])
                continue
            if kind != "cmd":
                continue  # unknown frame kinds are ignored for forward compatibility
            message = payload
            if message[0] == "stop":
                # A released worker exits instead of rejoining: the run that
                # owned it is over, and its coordinator is about to close.
                try:
                    with send_lock:
                        send_frame(sock, "reply", ("ok", None))
                except OSError:
                    pass
                raise _SessionEnd("stopped", rejoin=False)
            if server is None:
                raise _SessionEnd("command-before-assign")
            command = injector.begin()
            trip(command, "recv")
            try:
                reply = ("ok", server.handle(message))
            except InjectedNetworkFault as fault:
                network_effect(fault)
                reply = ("error", "network fault mid-handle")
            except Exception:  # noqa: BLE001 — errors travel back to the parent
                import traceback

                reply = ("error", traceback.format_exc())
            trip(command, "handle")
            if slow_link:
                time.sleep(slow_link)
            try:
                with send_lock:
                    send_frame(
                        sock, "reply", "!garbled!" if injector.garbled(command) else reply
                    )
            except OSError:
                raise _SessionEnd("connection-lost") from None
            summary["handled"] += 1
            pump.handled += 1
            trip(command, "reply")
    finally:
        pump.stop()
