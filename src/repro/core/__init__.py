"""The DIPE estimator: the paper's primary contribution.

:class:`~repro.core.dipe.DipeEstimator` ties the substrates together into the
flow of Fig. 1 of the paper: warm-up, independence-interval selection by the
runs test (Fig. 2), two-phase random power sampling, and a
distribution-independent stopping criterion.  :mod:`repro.core.baselines`
provides the comparison estimators (consecutive-cycle Monte Carlo and a fixed
a-priori warm-up scheme) used in the ablation experiments.
"""

from repro.core.baselines import (
    ConsecutiveCycleEstimator,
    FixedWarmupEstimator,
)
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator, estimate_average_power
from repro.core.interval import select_independence_interval
from repro.core.results import IntervalSelectionResult, IntervalTrial, PowerEstimate
from repro.core.sampler import PowerSampler
from repro.core.sharded_sampler import ShardedPowerSampler

__all__ = [
    "EstimationConfig",
    "IntervalSelectionResult",
    "IntervalTrial",
    "PowerEstimate",
    "PowerSampler",
    "BatchPowerSampler",
    "ShardedPowerSampler",
    "select_independence_interval",
    "DipeEstimator",
    "estimate_average_power",
    "ConsecutiveCycleEstimator",
    "FixedWarmupEstimator",
]
