"""Sequential selection of the independence interval (Fig. 2 of the paper).

Starting from a trial interval of zero, the procedure collects an ordered
power sequence whose adjacent entries are separated by the trial interval,
dichotomises it about its median and applies the ordinary runs test at the
user's significance level.  If the randomness hypothesis is rejected, the
interval is incremented by one clock cycle and a fresh sequence is collected;
otherwise the current interval is returned and used to generate the random
power sample for mean estimation.
"""

from __future__ import annotations

from repro.core.config import EstimationConfig
from repro.core.results import IntervalSelectionResult, IntervalTrial
from repro.core.sampler import PowerSampler
from repro.stats.randomness import runs_test_on_values


def select_independence_interval(
    sampler: PowerSampler,
    config: EstimationConfig | None = None,
) -> IntervalSelectionResult:
    """Run the sequential interval-selection procedure on *sampler*.

    Returns an :class:`IntervalSelectionResult`; when no trial interval up to
    ``config.max_independence_interval`` passes the runs test the result has
    ``converged=False`` and carries the largest trial interval, so estimation
    can still proceed (with a warning surfaced by the caller).
    """
    config = config or sampler.config
    start_cycles = sampler.cycles_simulated
    trials: list[IntervalTrial] = []

    for trial_interval in range(config.max_independence_interval + 1):
        sequence = sampler.collect_sequence(
            interval=trial_interval, length=config.randomness_sequence_length
        )
        test = runs_test_on_values(sequence, significance_level=config.significance_level)
        trials.append(
            IntervalTrial(
                interval=trial_interval,
                z_statistic=test.z_statistic,
                accepted=test.accepted,
                sequence_length=len(sequence),
            )
        )
        if test.accepted:
            return IntervalSelectionResult(
                interval=trial_interval,
                converged=True,
                trials=tuple(trials),
                significance_level=config.significance_level,
                cycles_simulated=sampler.cycles_simulated - start_cycles,
            )

    return IntervalSelectionResult(
        interval=config.max_independence_interval,
        converged=False,
        trials=tuple(trials),
        significance_level=config.significance_level,
        cycles_simulated=sampler.cycles_simulated - start_cycles,
    )


def z_statistic_profile(
    sampler: PowerSampler,
    max_interval: int,
    sequence_length: int,
    significance_level: float = 0.20,
) -> list[tuple[int, float, bool]]:
    """Measure the runs-test z statistic for every trial interval up to *max_interval*.

    This is the sweep behind Figure 3 of the paper (z statistic versus trial
    interval length for circuit s1494 with a sequence length of 10,000).
    Returns ``(interval, z_statistic, accepted)`` triples.
    """
    profile = []
    for interval in range(max_interval + 1):
        sequence = sampler.collect_sequence(interval=interval, length=sequence_length)
        test = runs_test_on_values(sequence, significance_level=significance_level)
        profile.append((interval, test.z_statistic, test.accepted))
    return profile
