"""Baseline estimators the paper compares against (implicitly or explicitly).

* :class:`ConsecutiveCycleEstimator` — the classic Monte-Carlo power
  estimator (Burch et al. [11], Najm et al. [1]): power is sampled in every
  clock cycle and a CLT-based stopping rule terminates the run.  In a
  sequential circuit consecutive samples are temporally correlated, so the
  nominal confidence statement is optimistic — this estimator exists to
  demonstrate the failure mode DIPE fixes (ablation experiment B).
* :class:`FixedWarmupEstimator` — the conservative a-priori warm-up scheme in
  the spirit of Chou & Roy [9]: every sample is taken from an independently
  re-randomised state after a fixed warm-up period, long enough under a
  pessimistic assumption about the FSM's mixing behaviour.  It is unbiased
  but wastes simulation cycles whenever the circuit mixes faster than the
  pessimistic assumption — the inefficiency DIPE's dynamic interval selection
  removes.

Both baselines speak the same incremental-execution protocol as
:class:`~repro.core.dipe.DipeEstimator`: ``run()`` streams typed
:class:`~repro.api.events.ProgressEvent` objects, ``estimate()`` drives the
stream, and :meth:`make_checkpoint` / ``run(resume_from=...)`` freeze and
resume a half-finished run.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.api.checkpoint import RunCheckpoint
from repro.api.events import (
    EstimateCompleted,
    ProgressEvent,
    RunStarted,
    SampleProgress,
)
from repro.api.protocol import StreamingEstimator
from repro.api.registry import register_estimator
from repro.circuits.program import as_compiled_circuit
from repro.core.batch_sampler import BatchPowerSampler, draw_samples, make_sampler
from repro.core.config import EstimationConfig
from repro.core.results import PowerEstimate
from repro.core.sampler import PowerSampler
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.stats.stopping import make_stopping_criterion
from repro.stimulus.base import Stimulus
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource


class _BaselineEstimator(StreamingEstimator):
    """Shared plumbing of the baseline estimators."""

    method = "baseline"

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
    ):
        circuit = as_compiled_circuit(circuit)
        self.circuit = circuit
        self.config = config or EstimationConfig()
        self.stimulus = stimulus or BernoulliStimulus(circuit.num_inputs, 0.5)
        self.sampler: PowerSampler | BatchPowerSampler = make_sampler(
            circuit, self.stimulus, self.config, rng=rng
        )

    @property
    def _batch(self) -> bool:
        return isinstance(self.sampler, BatchPowerSampler)

    def _collect_batch(self) -> list[float]:
        """Draw the next batch of samples (one per chain in batch mode)."""
        raise NotImplementedError

    def _interval(self) -> int:
        return 0

    def _stopping_name(self) -> str:
        return self.config.stopping_criterion

    # -------------------------------------------------------------- streaming
    def run(self, resume_from: RunCheckpoint | None = None) -> Iterator[ProgressEvent]:
        """Execute the baseline loop incrementally, yielding progress events."""
        config = self.config
        power_model = config.power_model
        circuit_name = self.circuit.name
        criterion = make_stopping_criterion(
            self._stopping_name(),
            max_relative_error=config.max_relative_error,
            confidence=config.confidence,
            min_samples=config.min_samples,
        )
        start_time = time.perf_counter()
        elapsed_before = 0.0

        if resume_from is None:
            yield RunStarted(
                circuit=circuit_name, method=self.method, samples_drawn=0, cycles_simulated=0
            )
            self.sampler.prepare(config.warmup_cycles)
            samples: list[float] = []
        else:
            self._validate_checkpoint(resume_from)
            elapsed_before = resume_from.elapsed_seconds
            self.sampler.set_state(resume_from.sampler_state)
            samples = list(resume_from.samples)

        self._samples = samples
        self._elapsed_seconds = elapsed_before + (time.perf_counter() - start_time)

        decision = criterion.evaluate(samples)
        while not decision.should_stop and len(samples) < config.max_samples:
            added = 0
            while added < config.check_interval:
                new_samples = self._collect_batch()
                samples.extend(new_samples)
                added += len(new_samples)
            decision = criterion.evaluate(samples)
            self._elapsed_seconds = elapsed_before + (time.perf_counter() - start_time)
            yield SampleProgress(
                circuit=circuit_name,
                method=self.method,
                samples_drawn=len(samples),
                cycles_simulated=self.sampler.cycles_simulated,
                running_mean_w=power_model.cycle_power(max(decision.estimate, 0.0)),
                lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
                upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
                relative_half_width=decision.relative_half_width,
                accuracy_met=decision.should_stop,
            )

        elapsed = elapsed_before + (time.perf_counter() - start_time)
        estimate = PowerEstimate(
            circuit_name=circuit_name,
            method=self.method,
            average_power_w=power_model.cycle_power(decision.estimate),
            lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
            upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
            relative_half_width=decision.relative_half_width,
            sample_size=len(samples),
            independence_interval=self._interval(),
            cycles_simulated=self.sampler.cycles_simulated,
            elapsed_seconds=elapsed,
            stopping_criterion=criterion.name,
            accuracy_met=decision.should_stop,
            interval_selection=None,
            samples_switched_capacitance_f=tuple(samples),
        )
        yield EstimateCompleted(
            circuit=circuit_name,
            method=self.method,
            samples_drawn=len(samples),
            cycles_simulated=self.sampler.cycles_simulated,
            estimate=estimate,
        )

@register_estimator("consecutive-mc")
class ConsecutiveCycleEstimator(_BaselineEstimator):
    """Monte-Carlo estimation from consecutive (correlated) clock cycles.

    The default stopping rule is the parametric CLT criterion, matching the
    historical estimators this baseline represents; any criterion accepted by
    :func:`repro.stats.stopping.make_stopping_criterion` can be selected via
    the configuration.
    """

    method = "consecutive-mc"

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        stopping_criterion: str = "clt",
    ):
        super().__init__(circuit, stimulus=stimulus, config=config, rng=rng)
        self._stopping = stopping_criterion

    def _stopping_name(self) -> str:
        return self._stopping

    def _collect_batch(self) -> list[float]:
        return draw_samples(self.sampler, interval=0)


@register_estimator("fixed-warmup")
class FixedWarmupEstimator(_BaselineEstimator):
    """Independent samples via a fixed, a-priori warm-up period.

    Every sample re-randomises the latch state and simulates ``warmup_period``
    clock cycles before measuring one cycle.  The warm-up period plays the
    role of the pessimistic bound of Chou & Roy: correctness does not depend
    on the FSM's actual mixing time as long as the period is long enough, but
    every sample costs ``warmup_period + 1`` simulated cycles regardless of
    how quickly the circuit actually forgets its state.
    """

    method = "fixed-warmup"

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        warmup_period: int = 50,
        stopping_criterion: str | None = None,
    ):
        super().__init__(circuit, stimulus=stimulus, config=config, rng=rng)
        if warmup_period < 0:
            raise ValueError("warmup_period must be non-negative")
        self.warmup_period = warmup_period
        self._stopping = stopping_criterion or self.config.stopping_criterion

    def _stopping_name(self) -> str:
        return self._stopping

    def _interval(self) -> int:
        return self.warmup_period

    def _collect_batch(self) -> list[float]:
        self.sampler.restart_from_random_state()
        self.sampler.advance(self.warmup_period)
        if self._batch:
            return [float(s) for s in self.sampler.measure_cycle()]
        return [self.sampler.measure_cycle()]
