"""Configuration of a DIPE estimation run.

The defaults reproduce the experimental setup of the paper's Section V:
significance level 0.20 for the runs test, a randomness-test sequence length
of 320, a maximum error of 5 % at 0.99 confidence, and the
distribution-independent (order-statistics) stopping criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel

#: The built-in power-measurement engines.  Kept for backwards compatibility;
#: validation goes through the extensible simulator registry in
#: :mod:`repro.api.registry`, so names registered by plugins are accepted too.
POWER_SIMULATORS = ("zero-delay", "event-driven")

#: The paper's built-in stopping criteria.  Kept for backwards compatibility;
#: validation goes through the extensible registry in
#: :mod:`repro.api.registry`, so names registered by plugins are accepted too.
STOPPING_CRITERIA = ("order-statistic", "clt", "ks")

#: Simulator backends accepted by :class:`EstimationConfig`.  "compiled" is
#: the numpy engine driving per-circuit generated C sweeps
#: (:mod:`repro.simulation.codegen`), bit-identical to "numpy" and degrading
#: to it when no C compiler is available.
SIMULATION_BACKENDS = ("auto", "bigint", "numpy", "compiled")


@dataclass(frozen=True)
class EstimationConfig:
    """All knobs of a DIPE run (paper defaults).

    Attributes
    ----------
    significance_level:
        Significance level of the runs test used for interval selection
        (paper: 0.20).
    randomness_sequence_length:
        Length of the power sequence collected per interval trial
        (paper: 320 — "the gain in statistical stability ... is marginal if
        it is any longer").
    max_independence_interval:
        Upper bound on the trial interval; the sequential procedure gives up
        (and keeps the last trial) beyond it.
    max_relative_error:
        Accuracy specification: maximum half-width of the confidence interval
        relative to the estimate (paper: 0.05).
    confidence:
        Required confidence of the final estimate (paper: 0.99).
    stopping_criterion:
        ``"order-statistic"`` (the paper's distribution-independent choice),
        ``"clt"`` or ``"ks"``.
    min_samples:
        Smallest sample size at which stopping is allowed.
    check_interval:
        The stopping criterion is evaluated every this many new samples
        (the paper's reported sample sizes are multiples of 32).
    max_samples:
        Hard cap on the sample size (guards against a mis-specified accuracy
        target never being reached).
    warmup_cycles:
        Clock cycles simulated before any statistics are collected, so the
        state process is (approximately) stationary when sampling starts.
    power_simulator:
        Power-measurement engine, as a string key from the simulator
        registry: ``"zero-delay"`` measures functional transitions only;
        ``"event-driven"`` uses the general-delay simulator and therefore
        includes glitch power (slower).  Names registered through
        :func:`repro.api.registry.register_simulator` are accepted too.
    delay_model:
        Gate delay model of the event-driven power simulator, as a string
        key from the delay-model registry (``"fanout"``, ``"unit"``,
        ``"type-table"``, ``"zero"``, or any registered plugin name).
        Ignored by the zero-delay power simulator.
    num_chains:
        Number of independent Monte Carlo chains advanced in lock-step by the
        bit-parallel simulator.  1 reproduces the paper's single-chain flow;
        larger values use the multi-chain batch sampler, which amortises
        every gate sweep over all chains.  Composes with both power engines:
        the event-driven engine re-simulates the sampled cycle for all
        chains at once through its vectorized time wheel.
    adaptive_chains:
        When ``True`` the batch sampler resizes the chain ensemble between
        sample batches, consulting the stopping criterion's running accuracy
        to predict how many more samples the run needs (grow while far from
        the target, shrink as it closes in).  Resizes re-warm the new
        ensemble, so the estimate stays unbiased; the sampled trajectory
        necessarily differs from a fixed-chain run.
    max_chains:
        Upper bound on the ensemble width adaptive scaling may grow to
        (ignored when ``adaptive_chains`` is off).
    adaptive_time_aware:
        When ``True`` (and ``adaptive_chains`` is on), the resize policy also
        consults the measured wall-clock seconds per sweep and sizes the
        ensemble so one sampling batch targets ``adaptive_target_seconds`` of
        work — wide ensembles on fast circuits, narrow ones on slow circuits.
        Off by default; when off, no timing is measured and the sampled
        trajectory is bit-identical to earlier releases.
    adaptive_target_seconds:
        Wall-clock budget per sampling batch the time-aware policy aims for
        (ignored unless ``adaptive_time_aware`` is on).
    num_workers:
        Number of worker processes the chain ensemble is sharded across.
        1 (the default) keeps all chains in-process; larger values use
        :class:`~repro.core.sharded_sampler.ShardedPowerSampler`, which
        partitions the chains over a persistent pool of processes while
        producing stopping decisions, checkpoints and estimates
        draw-for-draw identical to the in-process sampler with the same
        ``num_chains`` — worker count changes wall-clock time, never
        results.
    worker_max_restarts:
        How many consecutive respawn-and-replay recoveries the shard
        supervisor attempts for one worker seat within a single collect
        round before declaring the seat unrecoverable.  Past the budget the
        seat degrades to a clean in-process replica and the pool
        re-partitions onto the surviving workers at the next round boundary.
        Recovery never changes results — merged samples stay draw-for-draw
        identical to the fault-free run.
    worker_hang_timeout:
        Seconds a shard worker may go without making progress (no reply and
        no heartbeat advance) before the supervisor declares it hung, kills
        it and recovers.  Must comfortably exceed the longest single shard
        command; the heartbeat only advances between commands.
    worker_retry_backoff:
        Base of the exponential backoff (seconds) between consecutive
        respawns of the same worker seat: attempt *n* waits a full-jitter
        draw from ``[0, worker_retry_backoff * 2**(n-1)]``, capped at 2 s.
        The jitter comes from a dedicated parent-owned RNG stream (never
        the run RNG), so seeded runs stay reproducible while simultaneous
        seat deaths stop respawning in lockstep.
    worker_hosts:
        ``"host:port"`` address the shard pool's
        :class:`~repro.core.transport.ShardCoordinator` listens on for
        remote TCP shard workers (started with ``repro shard-worker
        --connect``).  ``None`` (the default) keeps the pool on local
        process pipes.  The ``REPRO_SHARD_HOSTS`` environment variable
        provides the same address ambiently.  Results are draw-for-draw
        identical for any topology — local, remote, or a mid-run mix.
    worker_auth_token:
        Shared secret remote workers must present in their join handshake
        (compared with ``hmac.compare_digest``).  Falls back to the
        ``REPRO_SHARD_TOKEN`` environment variable when empty.  The
        post-handshake wire format is pickle, so treat the token as a
        secret and only deploy on trusted networks.
    worker_join_timeout:
        Seconds the pool waits for remote workers: at construction, for
        ``num_workers`` members to join; during recovery, for a
        replacement member to acquire a failed seat (past it the seat
        degrades to a clean in-process replica, like a failed process
        spawn).
    shard_sync_interval:
        The supervisor truncates each shard's replay log to a fresh state
        snapshot every this many collect rounds (checkpoints truncate for
        free).  Smaller values bound recovery replay and parent memory
        tighter at the cost of more ``get_state`` round trips.
    simulation_backend:
        Lane-storage backend of the zero-delay simulator: ``"bigint"``
        (Python integers), ``"numpy"`` (word-sliced uint64 arrays),
        ``"compiled"`` (numpy storage with per-circuit generated C sweeps)
        or ``"auto"`` (pick by ensemble width).  The event-driven power
        engine picks its scalar or vectorized backend from the chain count.
    power_model / capacitance_model:
        Electrical models; defaults are the paper's 5 V / 20 MHz operating
        point and the default standard-cell capacitance values.
    """

    significance_level: float = 0.20
    randomness_sequence_length: int = 320
    max_independence_interval: int = 64
    max_relative_error: float = 0.05
    confidence: float = 0.99
    stopping_criterion: str = "order-statistic"
    min_samples: int = 128
    check_interval: int = 32
    max_samples: int = 200_000
    warmup_cycles: int = 64
    power_simulator: str = "zero-delay"
    delay_model: str = "fanout"
    num_chains: int = 1
    adaptive_chains: bool = False
    max_chains: int = 1024
    adaptive_time_aware: bool = False
    adaptive_target_seconds: float = 2.0
    num_workers: int = 1
    worker_max_restarts: int = 3
    worker_hang_timeout: float = 120.0
    worker_retry_backoff: float = 0.05
    worker_hosts: str | None = None
    worker_auth_token: str = ""
    worker_join_timeout: float = 30.0
    shard_sync_interval: int = 16
    simulation_backend: str = "auto"
    power_model: PowerModel = field(default_factory=PowerModel)
    capacitance_model: CapacitanceModel = field(default_factory=CapacitanceModel)

    def __post_init__(self) -> None:
        if not 0.0 < self.significance_level < 1.0:
            raise ValueError("significance_level must lie strictly between 0 and 1")
        if self.randomness_sequence_length < 16:
            raise ValueError("randomness_sequence_length must be at least 16")
        if self.max_independence_interval < 0:
            raise ValueError("max_independence_interval must be non-negative")
        if not 0.0 < self.max_relative_error < 1.0:
            raise ValueError("max_relative_error must lie strictly between 0 and 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")
        # Imported lazily: repro.api.jobs imports this module, so a top-level
        # import of the registry package would be circular.
        from repro.api.registry import STOPPING_CRITERION_REGISTRY

        if self.stopping_criterion not in STOPPING_CRITERION_REGISTRY:
            raise ValueError(
                f"stopping_criterion must be one of "
                f"{STOPPING_CRITERION_REGISTRY.names()}, "
                f"got {self.stopping_criterion!r}"
            )
        if self.min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        if self.check_interval < 1:
            raise ValueError("check_interval must be at least 1")
        if self.max_samples < self.min_samples:
            raise ValueError("max_samples must be at least min_samples")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be non-negative")
        from repro.api.registry import SIMULATOR_REGISTRY

        if self.power_simulator not in SIMULATOR_REGISTRY:
            raise ValueError(
                f"power_simulator must be one of {SIMULATOR_REGISTRY.names()}, "
                f"got {self.power_simulator!r}"
            )
        from repro.api.registry import DELAY_MODEL_REGISTRY

        if self.delay_model not in DELAY_MODEL_REGISTRY:
            raise ValueError(
                f"delay_model must be one of {DELAY_MODEL_REGISTRY.names()}, "
                f"got {self.delay_model!r}"
            )
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.worker_max_restarts < 0:
            raise ValueError("worker_max_restarts must be non-negative")
        if self.worker_hang_timeout <= 0.0:
            raise ValueError("worker_hang_timeout must be positive")
        if self.worker_retry_backoff < 0.0:
            raise ValueError("worker_retry_backoff must be non-negative")
        if self.worker_hosts is not None:
            # Imported lazily like the registries above (transport sits under
            # repro.core, but keep config import-light regardless).
            from repro.core.transport import parse_address

            try:
                parse_address(self.worker_hosts)
            except ValueError as error:
                raise ValueError(f"worker_hosts must be 'host:port': {error}") from None
        if self.worker_join_timeout <= 0.0:
            raise ValueError("worker_join_timeout must be positive")
        if self.shard_sync_interval < 1:
            raise ValueError("shard_sync_interval must be at least 1")
        if self.num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        if self.max_chains < 1:
            raise ValueError("max_chains must be at least 1")
        if self.adaptive_chains and self.max_chains < self.num_chains:
            raise ValueError(
                "adaptive chain scaling needs max_chains >= num_chains "
                f"(got max_chains={self.max_chains}, num_chains={self.num_chains})"
            )
        if self.adaptive_target_seconds <= 0.0:
            raise ValueError("adaptive_target_seconds must be positive")
        if self.simulation_backend not in SIMULATION_BACKENDS:
            raise ValueError(
                f"simulation_backend must be one of {SIMULATION_BACKENDS}, "
                f"got {self.simulation_backend!r}"
            )

    def paper_defaults(self) -> "EstimationConfig":
        """Return a copy with the exact statistical settings of the paper.

        Only the paper's statistical knobs are reset; execution choices
        (``power_simulator``, ``num_chains``, ``simulation_backend``) and the
        sampling-budget fields (``min_samples``, ``check_interval``,
        ``max_samples``, ``warmup_cycles``, ``max_independence_interval``)
        carry over unchanged.
        """
        return replace(
            self,
            significance_level=0.20,
            randomness_sequence_length=320,
            max_relative_error=0.05,
            confidence=0.99,
            stopping_criterion="order-statistic",
        )

    # ------------------------------------------------------------ serialization
    _MODEL_FIELDS = ("power_model", "capacitance_model")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation; inverse of :meth:`from_dict` bit-for-bit."""
        data: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name not in self._MODEL_FIELDS
        }
        data["power_model"] = {
            "vdd": self.power_model.vdd,
            "clock_frequency_hz": self.power_model.clock_frequency_hz,
        }
        data["capacitance_model"] = {
            f.name: getattr(self.capacitance_model, f.name) for f in fields(self.capacitance_model)
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EstimationConfig":
        """Rebuild a configuration from :meth:`to_dict` output (partial dicts allowed)."""
        data = dict(data)
        power_model = data.pop("power_model", None)
        capacitance_model = data.pop("capacitance_model", None)
        return cls(
            **data,
            power_model=PowerModel(**power_model) if power_model is not None else PowerModel(),
            capacitance_model=(
                CapacitanceModel(**capacitance_model)
                if capacitance_model is not None
                else CapacitanceModel()
            ),
        )
