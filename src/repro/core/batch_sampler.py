"""Multi-chain Monte Carlo power sampling on the vectorized simulator.

:class:`BatchPowerSampler` is the ensemble counterpart of
:class:`~repro.core.sampler.PowerSampler`: instead of one FSM trajectory it
advances ``num_chains`` statistically independent DIPE chains in lock-step,
one lane per chain, so a single gate sweep of the zero-delay simulator
produces ``num_chains`` power observations.  Every chain owns its own
stimulus stream (lane *k* of the vectorized stimulus draws), its own random
initial state and its own warm-up, so the chains are mutually independent and
each one is individually distributed exactly like a single-chain sampler run.

The two-phase sampling scheme of the paper carries over unchanged: during the
independence interval all chains are only *advanced* (cheap sweeps, no
measurement); on the sampled cycle one lane-resolved measurement yields one
power sample per chain.  The samples of consecutive measured cycles are
interleaved chain-major into the growing sample that feeds the stopping
criteria — exchangeable, independent draws from the same stationary power
distribution.

With ``num_chains=1`` and the big-int backend the sampler consumes the RNG
stream identically to :class:`~repro.core.sampler.PowerSampler` and therefore
reproduces its samples one-for-one under a fixed seed (a property the test
suite pins down).

The event-driven (glitch-aware) power engine is inherently scalar and is not
supported here; use :class:`~repro.core.sampler.PowerSampler` for
``power_simulator="event-driven"`` configurations.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EstimationConfig
from repro.core.sampler import PowerSampler
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource, spawn_rng


def make_sampler(
    circuit: CompiledCircuit,
    stimulus: Stimulus,
    config: EstimationConfig,
    rng: RandomSource = None,
) -> "PowerSampler | BatchPowerSampler":
    """Build the sampler the configuration asks for.

    ``num_chains > 1`` selects the multi-chain batch sampler; otherwise the
    single-chain two-phase sampler (which also supports the event-driven
    power engine) is used.  Every estimator dispatches through this single
    point so the selection rule cannot drift between them.
    """
    if config.num_chains > 1:
        return BatchPowerSampler(circuit, stimulus, config, rng=rng)
    return PowerSampler(circuit, stimulus, config, rng=rng)


def draw_samples(sampler: "PowerSampler | BatchPowerSampler", interval: int) -> list[float]:
    """Draw the next batch of power samples: one per chain, or a single one."""
    if isinstance(sampler, BatchPowerSampler):
        return [float(sample) for sample in sampler.next_samples(interval)]
    return [sampler.next_sample(interval)]


class BatchPowerSampler:
    """Generates per-cycle switched-capacitance observations for N chains at once.

    Parameters
    ----------
    circuit:
        Compiled circuit under estimation.
    stimulus:
        Primary-input pattern generator; lane *k* of its draws drives chain *k*.
    config:
        Estimation configuration (must use the zero-delay power engine).
    rng:
        Seed or generator; all randomness of the run flows through it.
    num_chains:
        Number of independent chains advanced per gate sweep; defaults to
        ``config.num_chains``.
    backend:
        Simulator backend (``"auto"``, ``"bigint"`` or ``"numpy"``); defaults
        to ``config.simulation_backend``.
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        stimulus: Stimulus,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        num_chains: int | None = None,
        backend: str | None = None,
    ):
        self.circuit = circuit
        self.stimulus = stimulus
        self.config = config or EstimationConfig()
        self.rng: np.random.Generator = spawn_rng(rng)
        self.num_chains = self.config.num_chains if num_chains is None else num_chains
        if self.num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        if self.config.power_simulator != "zero-delay":
            raise ValueError(
                "BatchPowerSampler supports the zero-delay power engine only; "
                "use PowerSampler for event-driven power measurement"
            )
        if stimulus.num_inputs != circuit.num_inputs:
            raise ValueError(
                f"stimulus drives {stimulus.num_inputs} inputs but circuit "
                f"{circuit.name!r} has {circuit.num_inputs}"
            )

        node_caps = self.config.capacitance_model.node_capacitances(circuit)
        self._engine = ZeroDelaySimulator(
            circuit,
            width=self.num_chains,
            node_capacitance=node_caps,
            backend=self.config.simulation_backend if backend is None else backend,
        )
        self._use_words = self._engine.backend == "numpy"

        self.cycles_simulated = 0
        self._prepared = False

    @property
    def backend(self) -> str:
        """Resolved simulator backend ("bigint" or "numpy")."""
        return self._engine.backend

    @property
    def chain_cycles(self) -> int:
        """Total chain-cycles advanced (gate sweeps times chains)."""
        return self.cycles_simulated * self.num_chains

    # ----------------------------------------------------------------- set-up
    def _next_pattern(self):
        if self._use_words:
            return self.stimulus.next_pattern_words(self.rng, width=self.num_chains)
        return self.stimulus.next_pattern(self.rng, width=self.num_chains)

    def prepare(self, warmup_cycles: int | None = None) -> None:
        """Randomise every chain's state, settle, and run the warm-up cycles."""
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self.stimulus.reset()
        self._engine.randomize_state(self.rng)
        self._engine.settle(self._next_pattern())
        for _ in range(warmup):
            self._advance_one_cycle()
        self._prepared = True

    def restart_from_random_state(self) -> None:
        """Re-randomise every chain's latch state and settle (no warm-up).

        Used by the fixed-warm-up baseline, which draws every batch of
        samples from independently re-initialised states.
        """
        self._engine.randomize_state(self.rng)
        self._engine.settle(self._next_pattern())
        self._prepared = True

    def _require_prepared(self) -> None:
        if not self._prepared:
            self.prepare()

    # ------------------------------------------------------------------ state
    def get_state(self) -> dict:
        """Snapshot the sampler for checkpoint/resume (see :class:`PowerSampler`)."""
        return {
            "rng": self.rng.bit_generator.state,
            "cycles_simulated": self.cycles_simulated,
            "prepared": self._prepared,
            "engine": self._engine.get_state(),
            "stimulus": self.stimulus.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.rng.bit_generator.state = state["rng"]
        self.cycles_simulated = state["cycles_simulated"]
        self._prepared = state["prepared"]
        self._engine.set_state(state["engine"])
        self.stimulus.set_state(state["stimulus"])

    # ------------------------------------------------------------------ steps
    def _advance_one_cycle(self) -> None:
        self._engine.step(self._next_pattern())
        self.cycles_simulated += 1

    # ------------------------------------------------------------------- API
    def advance(self, cycles: int) -> None:
        """Advance all chains *cycles* clock cycles without measuring power."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._require_prepared()
        for _ in range(cycles):
            self._advance_one_cycle()

    def measure_cycle(self) -> np.ndarray:
        """Simulate one clock cycle; return each chain's switched capacitance.

        The result has shape ``(num_chains,)``: entry *k* is the
        capacitance-weighted transition count of chain *k* in this cycle.
        """
        self._require_prepared()
        switched = self._engine.step_and_measure_lanes(self._next_pattern())
        self.cycles_simulated += 1
        return switched

    def measure_cycle_total(self) -> float:
        """Simulate one clock cycle; return the switched capacitance summed over chains.

        Cheaper than :meth:`measure_cycle` (no per-lane resolution) — this is
        the long-run ensemble-reference workload.
        """
        self._require_prepared()
        switched = self._engine.step_and_measure(self._next_pattern())
        self.cycles_simulated += 1
        return switched

    def collect_sequence(self, interval: int, length: int) -> list[float]:
        """Collect an ordered power sequence from chain 0 for the randomness test.

        Adjacent entries are separated by *interval* un-measured clock cycles.
        All chains advance in lock-step, so the same interval structure holds
        for every chain; chain 0's sequence is returned because the runs test
        needs one temporally ordered series (samples interleaved *across*
        chains would be trivially independent and would bias the test toward
        accepting too-short intervals).
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if length < 1:
            raise ValueError("length must be at least 1")
        self._require_prepared()
        sequence = []
        for _ in range(length):
            for _ in range(interval):
                self._advance_one_cycle()
            sequence.append(float(self.measure_cycle()[0]))
        return sequence

    def next_samples(self, interval: int) -> np.ndarray:
        """Return one power sample per chain, preceded by *interval* un-measured cycles."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self._require_prepared()
        for _ in range(interval):
            self._advance_one_cycle()
        return self.measure_cycle()

    def samples(self, interval: int, count: int) -> list[float]:
        """Return at least *count* samples spaced by *interval* cycles, interleaved chain-major."""
        collected: list[float] = []
        while len(collected) < count:
            collected.extend(float(value) for value in self.next_samples(interval))
        return collected
