"""Multi-chain Monte Carlo power sampling on the vectorized simulators.

:class:`BatchPowerSampler` is the ensemble counterpart of
:class:`~repro.core.sampler.PowerSampler`: instead of one FSM trajectory it
advances ``num_chains`` statistically independent DIPE chains in lock-step,
one lane per chain, so a single gate sweep of the zero-delay simulator
produces ``num_chains`` power observations.  Every chain owns its own
stimulus stream (lane *k* of the vectorized stimulus draws), its own random
initial state and its own warm-up, so the chains are mutually independent and
each one is individually distributed exactly like a single-chain sampler run.

The two-phase sampling scheme of the paper carries over unchanged: during the
independence interval all chains are only *advanced* (cheap zero-delay
sweeps, no measurement); on the sampled cycle one lane-resolved measurement
yields one power sample per chain.  Both power engines are supported:

* ``power_simulator="zero-delay"`` measures the functional transitions of the
  sweep itself;
* ``power_simulator="event-driven"`` re-simulates the sampled cycle for all
  chains at once with the vectorized general-delay engine
  (:mod:`repro.simulation.vectorized_timing`), so glitch power rides the
  same lock-step ensemble.

The samples of consecutive measured cycles are interleaved chain-major into
the growing sample that feeds the stopping criteria — exchangeable,
independent draws from the same stationary power distribution.  Use
:meth:`BatchPowerSampler.sample_block` (or :func:`draw_sample_block`) to
collect a whole stopping-criterion batch without per-sample Python loops.

With ``num_chains=1`` the sampler consumes the RNG stream identically to
:class:`~repro.core.sampler.PowerSampler` and therefore reproduces its
samples one-for-one under a fixed seed (a property the test suite pins down
for both power engines).

**Adaptive chain scaling** (``EstimationConfig(adaptive_chains=True)``):
between sample batches, :meth:`plan_chain_resize` converts the stopping
criterion's running accuracy into the chain count that would finish the run
in a handful more measured sweeps, and :meth:`resize` rebuilds the lock-step
ensemble at that width.  Resized ensembles are re-randomised and re-warmed,
so every sample — before or after a resize — remains an independent draw
from the stationary power distribution.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.api.registry import get_simulator
from repro.circuits.program import CircuitProgram
from repro.core.config import EstimationConfig
from repro.core.sampler import PowerSampler
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stats.stopping.base import StoppingDecision
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource, spawn_rng


def make_sampler(
    circuit,
    stimulus: Stimulus,
    config: EstimationConfig,
    rng: RandomSource = None,
) -> "PowerSampler | BatchPowerSampler":
    """Build the sampler the configuration asks for.

    ``num_workers > 1`` — or ``worker_hosts`` naming a coordinator address
    for remote TCP shard workers — selects the sharded sampler (which
    produces results draw-for-draw identical to the in-process one);
    ``num_chains > 1`` (or adaptive chain scaling, which needs a resizable
    ensemble) selects the multi-chain batch sampler; otherwise the
    single-chain two-phase sampler is used.  Every estimator dispatches
    through this single point so the selection rule cannot drift between
    them.
    """
    if config.num_workers > 1 or config.worker_hosts:
        # Imported lazily: the sharded sampler builds on this module.
        from repro.core.sharded_sampler import ShardedPowerSampler

        return ShardedPowerSampler(circuit, stimulus, config, rng=rng)
    if config.num_chains > 1 or config.adaptive_chains:
        return BatchPowerSampler(circuit, stimulus, config, rng=rng)
    return PowerSampler(circuit, stimulus, config, rng=rng)


def draw_samples(sampler: "PowerSampler | BatchPowerSampler", interval: int) -> list[float]:
    """Draw the next batch of power samples: one per chain, or a single one."""
    if isinstance(sampler, BatchPowerSampler):
        # ndarray.tolist() converts lanes to Python floats in C, replacing the
        # old per-sample Python comprehension on this hot path.
        return sampler.next_samples(interval).tolist()
    return [sampler.next_sample(interval)]


def draw_sample_block(
    sampler: "PowerSampler | BatchPowerSampler", interval: int, min_count: int
) -> list[float]:
    """Draw at least *min_count* new samples, chain-major interleaved.

    Draw-for-draw identical to calling :func:`draw_samples` in a loop until
    *min_count* samples accumulate (same RNG consumption, same sample order),
    but the interleaving of per-chain lanes into the flat sample happens as
    one vectorized reshape instead of a Python loop per batch.

    When the configuration enables the wall-clock-aware resize policy
    (``adaptive_chains`` plus ``adaptive_time_aware``), the batch is timed
    and fed to :meth:`BatchPowerSampler.note_sweep_seconds`; with the flag
    off, no clock is read at all, so disabled runs stay bit-identical.
    """
    if isinstance(sampler, BatchPowerSampler):
        config = sampler.config
        if config.adaptive_chains and config.adaptive_time_aware:
            start = time.perf_counter()
            block = sampler.sample_block(interval, min_count)
            sweeps = len(block) // max(1, sampler.num_chains)
            sampler.note_sweep_seconds(time.perf_counter() - start, sweeps)
            return block.tolist()
        return sampler.sample_block(interval, min_count).tolist()
    return [sampler.next_sample(interval) for _ in range(min_count)]


class BatchPowerSampler:
    """Generates per-cycle switched-capacitance observations for N chains at once.

    Parameters
    ----------
    circuit:
        Compiled circuit (or prebuilt
        :class:`~repro.circuits.program.CircuitProgram`) under estimation.
        Either way the sampler and every engine it builds — across resizes —
        share one cached program lowering.
    stimulus:
        Primary-input pattern generator; lane *k* of its draws drives chain *k*.
    config:
        Estimation configuration (either power engine).
    rng:
        Seed or generator; all randomness of the run flows through it.
    num_chains:
        Number of independent chains advanced per gate sweep; defaults to
        ``config.num_chains``.
    backend:
        Zero-delay simulator backend (``"auto"``, ``"bigint"``, ``"numpy"``
        or ``"compiled"``); defaults to ``config.simulation_backend``.  The
        event-driven engine picks scalar/numpy from the chain count.
    """

    def __init__(
        self,
        circuit,
        stimulus: Stimulus,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        num_chains: int | None = None,
        backend: str | None = None,
    ):
        self.program = CircuitProgram.of(circuit)
        self.circuit = self.program.circuit
        self.stimulus = stimulus
        self.config = config or EstimationConfig()
        self.rng: np.random.Generator = spawn_rng(rng)
        self.num_chains = self.config.num_chains if num_chains is None else num_chains
        if self.num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        if stimulus.num_inputs != self.circuit.num_inputs:
            raise ValueError(
                f"stimulus drives {stimulus.num_inputs} inputs but circuit "
                f"{self.circuit.name!r} has {self.circuit.num_inputs}"
            )

        self._node_caps = self.program.capacitances(self.config.capacitance_model)
        self._backend_request = (
            self.config.simulation_backend if backend is None else backend
        )
        if self._backend_request == "auto":
            # Registered simulators may pin the state-engine backend (the
            # "compiled"/"event-driven-compiled" engines route the shared
            # state sweeps through the codegen kernel); an explicit user
            # backend always wins over the engine's preference.
            override = getattr(
                get_simulator(self.config.power_simulator), "state_backend", None
            )
            if override is not None:
                self._backend_request = override
        self._build_engines()

        self.cycles_simulated = 0
        self._prepared = False
        self._seconds_per_sweep: float | None = None

    #: Event-engine backend request used by :meth:`_build_engines`; shard
    #: samplers override it with the backend resolved at full ensemble width.
    _event_backend_request = "auto"

    def _build_engines(self) -> None:
        """(Re)build the state and power engines at the current ``num_chains`` width."""
        self._engine = ZeroDelaySimulator(
            self.program,
            width=self.num_chains,
            node_capacitance=self._node_caps,
            backend=self._backend_request,
        )
        self._use_words = self._engine.backend != "bigint"
        # The power engine comes from the simulator registry, so any
        # registered measurement engine composes with the chain ensemble.
        self._power = get_simulator(self.config.power_simulator)(
            self.program,
            width=self.num_chains,
            node_capacitance=self._node_caps,
            delay_model=self.config.delay_model,
            backend=self._event_backend_request,
        )
        self._event_engine = self._power.engine

    @property
    def backend(self) -> str:
        """Resolved zero-delay simulator backend ("bigint", "numpy" or "compiled")."""
        return self._engine.backend

    @property
    def chain_cycles(self) -> int:
        """Total chain-cycles advanced (gate sweeps times chains)."""
        return self.cycles_simulated * self.num_chains

    # ----------------------------------------------------------------- set-up
    def _next_pattern(self):
        if self._use_words:
            return self.stimulus.next_pattern_words(self.rng, width=self.num_chains)
        return self.stimulus.next_pattern(self.rng, width=self.num_chains)

    def prepare(self, warmup_cycles: int | None = None) -> None:
        """Randomise every chain's state, settle, and run the warm-up cycles."""
        self.stimulus.reset()
        self._warm_up(warmup_cycles)

    def _warm_up(self, warmup_cycles: int | None = None) -> None:
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self._engine.randomize_state(self.rng)
        self._engine.settle(self._next_pattern())
        self._prepared = True
        for _ in range(warmup):
            self._advance_one_cycle()

    def restart_from_random_state(self) -> None:
        """Re-randomise every chain's latch state and settle (no warm-up).

        Used by the fixed-warm-up baseline, which draws every batch of
        samples from independently re-initialised states.
        """
        self._engine.randomize_state(self.rng)
        self._engine.settle(self._next_pattern())
        self._prepared = True

    def _require_prepared(self) -> None:
        if not self._prepared:
            self.prepare()

    # ------------------------------------------------------- adaptive scaling
    def resize(self, num_chains: int) -> None:
        """Change the number of lock-step chains; re-warm the new ensemble.

        Chains are mutually independent and individually stationary after
        warm-up, so a resize rebuilds the engines at the new width,
        re-randomises every chain and repeats the warm-up — samples drawn
        before and after a resize are identically distributed.  The RNG
        stream continues uninterrupted, so adaptive runs stay reproducible
        from their seed.
        """
        if num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        if num_chains == self.num_chains:
            return
        was_prepared = self._prepared
        self.num_chains = num_chains
        self._build_engines()
        self._prepared = False
        if was_prepared:
            self._warm_up()

    def note_sweep_seconds(self, seconds: float, sweeps: int) -> None:
        """Feed a wall-clock measurement of *sweeps* measured sweeps.

        Maintains an exponential moving average of seconds per sweep for the
        time-aware resize policy.  Only called when
        ``config.adaptive_time_aware`` is enabled (the caller owns the
        clock), so disabled runs never touch a timer.
        """
        if sweeps < 1 or seconds < 0.0:
            return
        per_sweep = seconds / sweeps
        if self._seconds_per_sweep is None:
            self._seconds_per_sweep = per_sweep
        else:
            self._seconds_per_sweep = 0.5 * self._seconds_per_sweep + 0.5 * per_sweep

    def plan_chain_resize(self, decision: StoppingDecision) -> int:
        """Chain count the stopping trajectory asks for (with 2x hysteresis).

        Extrapolates the sample size that meets the accuracy target from the
        criterion's running relative half-width (half-width shrinks like
        ``1/sqrt(n)``), aims to collect the remaining samples in a few more
        measured sweeps, and rounds to a power of two within
        ``[1, config.max_chains]``.  Returns the current chain count when the
        signal is unusable (no samples yet, infinite half-width) or the
        proposed move is smaller than 2x in either direction — rebuilding and
        re-warming the ensemble is only worth a decisive change.

        With ``config.adaptive_time_aware`` on and at least one batch timing
        recorded (:meth:`note_sweep_seconds`), the sweep horizon is derived
        from the measured seconds per sweep instead of the fixed default:
        the policy sizes the ensemble so the remaining work fits in about
        ``config.adaptive_target_seconds`` of sweeping.  When the flag is
        off this branch is never taken and the plan is bit-identical to the
        fixed-horizon policy.
        """
        if decision.should_stop or decision.sample_size == 0:
            return self.num_chains
        half_width = decision.relative_half_width
        if not math.isfinite(half_width) or half_width <= 0.0:
            return self.num_chains
        target = self.config.max_relative_error
        needed_total = decision.sample_size * (half_width / target) ** 2
        remaining = min(needed_total, float(self.config.max_samples)) - decision.sample_size
        if remaining <= 0.0:
            return self.num_chains
        # Aim to finish in ~4 more measured sweeps at the proposed width; the
        # time-aware policy instead spends the configured wall-clock budget.
        sweeps_target = 4.0
        if self.config.adaptive_time_aware and self._seconds_per_sweep:
            sweeps_target = min(
                64.0, max(1.0, self.config.adaptive_target_seconds / self._seconds_per_sweep)
            )
        desired = 1 << max(0, math.ceil(math.log2(max(1.0, remaining / sweeps_target))))
        desired = max(1, min(self.config.max_chains, desired))
        if desired >= 2 * self.num_chains or 2 * desired <= self.num_chains:
            return desired
        return self.num_chains

    # ------------------------------------------------------------------ state
    def get_state(self) -> dict:
        """Snapshot the sampler for checkpoint/resume (see :class:`PowerSampler`).

        The event-driven engine needs no snapshot: every measured cycle
        reloads it from the zero-delay engine's settled network.
        """
        return {
            "rng": self.rng.bit_generator.state,
            "num_chains": self.num_chains,
            "cycles_simulated": self.cycles_simulated,
            "prepared": self._prepared,
            "engine": self._engine.get_state(),
            "stimulus": self.stimulus.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        chains = state.get("num_chains", self.num_chains)
        if chains != self.num_chains:
            self.num_chains = chains
            self._build_engines()
        self.rng.bit_generator.state = state["rng"]
        self.cycles_simulated = state["cycles_simulated"]
        self._prepared = state["prepared"]
        self._engine.set_state(state["engine"])
        self.stimulus.set_state(state["stimulus"])

    # ------------------------------------------------------------------ steps
    def _advance_one_cycle(self) -> None:
        self._engine.step(self._next_pattern())
        self.cycles_simulated += 1

    def _measure_lanes(self) -> np.ndarray:
        switched = self._power.measure_lanes(self._engine, self._next_pattern())
        self.cycles_simulated += 1
        return switched

    # ------------------------------------------------------------------- API
    def advance(self, cycles: int) -> None:
        """Advance all chains *cycles* clock cycles without measuring power."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._require_prepared()
        for _ in range(cycles):
            self._advance_one_cycle()

    def measure_cycle(self) -> np.ndarray:
        """Simulate one clock cycle; return each chain's switched capacitance.

        The result has shape ``(num_chains,)``: entry *k* is the
        capacitance-weighted transition count of chain *k* in this cycle
        (glitches included under the event-driven power engine).
        """
        self._require_prepared()
        return self._measure_lanes()

    def measure_cycle_total(self) -> float:
        """Simulate one clock cycle; return the switched capacitance summed over chains.

        Cheaper than :meth:`measure_cycle` on the zero-delay engine (no
        per-lane resolution) — this is the long-run ensemble-reference
        workload.
        """
        self._require_prepared()
        switched = self._power.measure_total(self._engine, self._next_pattern())
        self.cycles_simulated += 1
        return switched

    def collect_sequence(self, interval: int, length: int) -> list[float]:
        """Collect an ordered power sequence from chain 0 for the randomness test.

        Adjacent entries are separated by *interval* un-measured clock cycles.
        All chains advance in lock-step, so the same interval structure holds
        for every chain; chain 0's sequence is returned because the runs test
        needs one temporally ordered series (samples interleaved *across*
        chains would be trivially independent and would bias the test toward
        accepting too-short intervals).
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if length < 1:
            raise ValueError("length must be at least 1")
        self._require_prepared()
        sequence = []
        for _ in range(length):
            for _ in range(interval):
                self._advance_one_cycle()
            sequence.append(float(self.measure_cycle()[0]))
        return sequence

    def next_samples(self, interval: int) -> np.ndarray:
        """Return one power sample per chain, preceded by *interval* un-measured cycles."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self._require_prepared()
        for _ in range(interval):
            self._advance_one_cycle()
        return self.measure_cycle()

    def next_samples_with_control(
        self, interval: int, cheap_cycles: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """One control-variate sweep: samples, their controls and a cheap mean.

        Advances all chains ``max(interval, cheap_cycles)`` cycles, measuring
        each advance cycle's *total* zero-delay switched capacitance (the
        advance cycles double as the independence interval, so the cheap
        control costs no extra simulation), then measures the sampled cycle
        with **both** engines on identical lanes via the power engine's
        ``measure_lanes_with_control``.

        Returns ``(samples, controls, cheap_mean)``: the per-chain power
        samples, the per-chain zero-delay controls of the same cycle, and the
        per-chain-cycle mean of the cheap advance measurements.  Under
        stationarity the controls and the cheap mean share one expectation,
        so their difference is a mean-zero control variate for the samples
        (see :class:`repro.variance.control_variate.ControlVariateEstimator`).
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if cheap_cycles < 1:
            raise ValueError("cheap_cycles must be at least 1")
        measure = getattr(self._power, "measure_lanes_with_control", None)
        if measure is None:
            raise ValueError(
                f"power simulator {self.config.power_simulator!r} does not expose "
                f"measure_lanes_with_control; the control-variate estimator needs it"
            )
        self._require_prepared()
        advance = max(interval, cheap_cycles)
        cheap_total = 0.0
        for _ in range(advance):
            cheap_total += float(self._engine.step_and_measure(self._next_pattern()))
            self.cycles_simulated += 1
        samples, controls = measure(self._engine, self._next_pattern())
        self.cycles_simulated += 1
        cheap_mean = cheap_total / (advance * self.num_chains)
        return samples, controls, cheap_mean

    def sample_block(self, interval: int, min_count: int) -> np.ndarray:
        """Return at least *min_count* samples spaced by *interval* cycles.

        Runs ``ceil(min_count / num_chains)`` measured sweeps and interleaves
        the per-chain lanes chain-major with one reshape — the vectorized
        equivalent of extending a Python list one :meth:`next_samples` batch
        at a time (identical RNG consumption and sample order).
        """
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        sweeps = -(-min_count // self.num_chains)
        block = np.empty((sweeps, self.num_chains), dtype=np.float64)
        for index in range(sweeps):
            block[index] = self.next_samples(interval)
        return block.reshape(-1)

    def samples(self, interval: int, count: int) -> list[float]:
        """Return at least *count* samples spaced by *interval* cycles, interleaved chain-major."""
        return self.sample_block(interval, count).tolist()
