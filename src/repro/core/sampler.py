"""Two-phase random power sampling (Section IV of the paper).

During the independence interval the circuit only needs to be *advanced* —
"zero-delay simulation of the next-state logic of the FSM is sufficient" — so
the cheap cycle-based simulator is used and no power is recorded.  At the end
of the interval the sampled cycle is simulated with the configured power
engine: either the same zero-delay simulator (functional transitions only) or
the event-driven general-delay simulator (glitches included).

:class:`PowerSampler` owns both engines plus the stimulus and exposes the two
operations the estimators need:

* :meth:`collect_sequence` — an ordered power sequence with a given spacing,
  used by the randomness test during interval selection; and
* :meth:`next_sample` — one random power sample separated from the previous
  one by the selected independence interval.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import get_simulator
from repro.circuits.program import CircuitProgram
from repro.core.config import EstimationConfig
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource, spawn_rng


class PowerSampler:
    """Generates per-cycle switched-capacitance observations from a circuit.

    Parameters
    ----------
    circuit:
        Compiled circuit (or prebuilt
        :class:`~repro.circuits.program.CircuitProgram`) under estimation.
    stimulus:
        Primary-input pattern generator.
    config:
        Estimation configuration (selects the power engine and electrical
        models).
    rng:
        Seed or generator; all randomness of the run flows through it.
    """

    def __init__(
        self,
        circuit,
        stimulus: Stimulus,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
    ):
        self.program = CircuitProgram.of(circuit)
        self.circuit = self.program.circuit
        self.stimulus = stimulus
        self.config = config or EstimationConfig()
        self.rng: np.random.Generator = spawn_rng(rng)

        if stimulus.num_inputs != self.circuit.num_inputs:
            raise ValueError(
                f"stimulus drives {stimulus.num_inputs} inputs but circuit "
                f"{self.circuit.name!r} has {self.circuit.num_inputs}"
            )

        node_caps = self.program.capacitances(self.config.capacitance_model)
        backend = self.config.simulation_backend
        if backend == "auto":
            # Same state-backend pinning as the batch sampler: registered
            # simulators (the compiled engines) may route the state sweeps
            # through the codegen kernel unless the user chose explicitly.
            backend = (
                getattr(get_simulator(self.config.power_simulator), "state_backend", None)
                or backend
            )
        self._state_engine = ZeroDelaySimulator(
            self.program,
            width=1,
            node_capacitance=node_caps,
            backend=backend,
        )
        self._power = get_simulator(self.config.power_simulator)(
            self.program,
            width=1,
            node_capacitance=node_caps,
            delay_model=self.config.delay_model,
        )
        self._event_engine = self._power.engine

        self.cycles_simulated = 0
        self._prepared = False

    # ----------------------------------------------------------------- set-up
    def prepare(self, warmup_cycles: int | None = None) -> None:
        """Randomise the state, settle the network, and run the warm-up cycles."""
        warmup = self.config.warmup_cycles if warmup_cycles is None else warmup_cycles
        self.stimulus.reset()
        self._state_engine.randomize_state(self.rng)
        self._state_engine.settle(self.stimulus.next_pattern(self.rng, width=1))
        for _ in range(warmup):
            self._advance_one_cycle()
        self._prepared = True

    def _require_prepared(self) -> None:
        if not self._prepared:
            self.prepare()

    # ------------------------------------------------------------------ steps
    def _advance_one_cycle(self) -> None:
        """Advance the state one clock cycle without measuring power."""
        self._state_engine.step(self.stimulus.next_pattern(self.rng, width=1))
        self.cycles_simulated += 1

    def _measure_one_cycle(self) -> float:
        """Simulate one clock cycle with the power engine; return switched capacitance."""
        pattern = self.stimulus.next_pattern(self.rng, width=1)
        switched = self._power.measure_total(self._state_engine, pattern)
        self.cycles_simulated += 1
        return switched

    # ------------------------------------------------------------------ state
    def get_state(self) -> dict:
        """Snapshot the sampler for checkpoint/resume.

        Captures the RNG bit-generator state, the simulator's lane values,
        the stimulus state and the cycle counter — everything needed so a
        restored sampler continues the *same* random trajectory.
        """
        return {
            "rng": self.rng.bit_generator.state,
            "cycles_simulated": self.cycles_simulated,
            "prepared": self._prepared,
            "engine": self._state_engine.get_state(),
            "stimulus": self.stimulus.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.rng.bit_generator.state = state["rng"]
        self.cycles_simulated = state["cycles_simulated"]
        self._prepared = state["prepared"]
        self._state_engine.set_state(state["engine"])
        self.stimulus.set_state(state["stimulus"])

    # ------------------------------------------------------------------- API
    def restart_from_random_state(self) -> None:
        """Re-randomise the latch state and settle the network (no warm-up).

        Used by the fixed-warm-up baseline, which draws every sample from an
        independently re-initialised state.
        """
        self._state_engine.randomize_state(self.rng)
        self._state_engine.settle(self.stimulus.next_pattern(self.rng, width=1))
        self._prepared = True

    def advance(self, cycles: int) -> None:
        """Advance the circuit *cycles* clock cycles without measuring power."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._require_prepared()
        for _ in range(cycles):
            self._advance_one_cycle()

    def measure_cycle(self) -> float:
        """Simulate one clock cycle with the power engine and return its switched capacitance."""
        self._require_prepared()
        return self._measure_one_cycle()

    def collect_sequence(self, interval: int, length: int) -> list[float]:
        """Collect an ordered power sequence for the randomness test.

        Adjacent entries are separated by *interval* un-measured clock cycles
        (an interval of 0 measures every cycle).
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if length < 1:
            raise ValueError("length must be at least 1")
        self._require_prepared()
        sequence = []
        for _ in range(length):
            for _ in range(interval):
                self._advance_one_cycle()
            sequence.append(self._measure_one_cycle())
        return sequence

    def next_sample(self, interval: int) -> float:
        """Return one power sample preceded by *interval* un-measured cycles."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self._require_prepared()
        for _ in range(interval):
            self._advance_one_cycle()
        return self._measure_one_cycle()

    def samples(self, interval: int, count: int) -> list[float]:
        """Return *count* samples spaced by *interval* cycles."""
        return [self.next_sample(interval) for _ in range(count)]
