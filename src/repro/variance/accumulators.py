"""Streaming accumulators for lane-coupled (grouped) sample streams.

When a lane-coupled stimulus drives the multi-chain sampler, per-cycle
samples are only exchangeable *within* a sweep group of ``group_width``
lanes; the groups themselves are the independent replicates.  The
:class:`PairedMeanAccumulator` tracks both views of the same stream in O(1)
memory — the raw per-sample moments and the group-mean moments — and
derives the **effective sample size**

``n_eff = per_sample_variance x num_groups / group_mean_variance``,

i.e. the number of *independent* samples whose mean would have the variance
actually observed for the group means.  ``n_eff`` above the raw count means
the coupling is helping (negative cross-lane correlation); below it means
the draws are positively correlated and the flat CI would have been
anti-conservative.  Estimators surface the value in
:class:`~repro.api.events.SampleProgress` and
:class:`~repro.core.results.PowerEstimate`.
"""

from __future__ import annotations

import math

__all__ = ["PairedMeanAccumulator"]


class PairedMeanAccumulator:
    """Online per-sample and per-group moment tracker.

    Samples arrive in draw order via :meth:`extend`; every consecutive run of
    ``group_width`` samples forms one group (matching the sampler's sweep
    layout, where a block of ``num_chains`` samples shares one cycle).  A
    partial trailing group is buffered until it completes, so feeding data in
    arbitrary chunk sizes is fine.

    With ``group_width=1`` the accumulator degrades to a plain running
    mean/variance and :attr:`effective_sample_size` approaches the raw count.
    """

    def __init__(self, group_width: int = 1):
        if group_width < 1:
            raise ValueError("group_width must be at least 1")
        self.group_width = int(group_width)
        self._count = 0
        self._total = 0.0
        self._total_sq = 0.0
        self._group_count = 0
        self._group_total = 0.0
        self._group_total_sq = 0.0
        self._pending: list[float] = []

    def extend(self, values) -> None:
        """Fold an iterable of samples (in draw order) into the moments."""
        for value in values:
            value = float(value)
            self._count += 1
            self._total += value
            self._total_sq += value * value
            self._pending.append(value)
            if len(self._pending) == self.group_width:
                mean = math.fsum(self._pending) / self.group_width
                self._group_count += 1
                self._group_total += mean
                self._group_total_sq += mean * mean
                self._pending.clear()

    @property
    def count(self) -> int:
        """Raw samples absorbed so far (including any partial group)."""
        return self._count

    @property
    def num_groups(self) -> int:
        """Complete groups absorbed so far."""
        return self._group_count

    @property
    def mean(self) -> float:
        """Running mean over all raw samples."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    @property
    def per_sample_variance(self) -> float | None:
        """Unbiased variance of the raw samples (None below 2 samples)."""
        if self._count < 2:
            return None
        mean = self._total / self._count
        var = (self._total_sq - self._count * mean * mean) / (self._count - 1)
        return max(var, 0.0)

    @property
    def group_mean_variance(self) -> float | None:
        """Unbiased variance of the group means (None below 2 groups)."""
        if self._group_count < 2:
            return None
        mean = self._group_total / self._group_count
        var = (self._group_total_sq - self._group_count * mean * mean) / (self._group_count - 1)
        return max(var, 0.0)

    @property
    def effective_sample_size(self) -> float | None:
        """Independent-sample equivalent of the group-mean precision.

        None until both variances are defined or when either is degenerate
        (constant samples), in which case no meaningful ratio exists.
        """
        per_sample = self.per_sample_variance
        grouped = self.group_mean_variance
        if per_sample is None or grouped is None:
            return None
        if per_sample <= 0.0 or grouped <= 0.0:
            return None
        return per_sample * self._group_count / grouped
