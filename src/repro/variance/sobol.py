"""Self-contained scrambled-Sobol machinery (no scipy dependency).

A Sobol sequence is a (t, s)-digital net in base 2: coordinate *d* of point
*i* is built by XOR-ing *direction numbers* selected by the bits of *i*.
Any aligned block of ``2^k`` consecutive points is perfectly balanced in
every coordinate — exactly the property :class:`~repro.variance.stimuli.
SobolStimulus` exploits to balance input toggles across the lock-step chain
ensemble.

Everything here is built at runtime from first principles:

* :func:`primitive_polynomials` brute-forces primitive polynomials over
  GF(2) in degree order (a polynomial is primitive iff ``x`` has
  multiplicative order ``2^deg - 1`` in ``GF(2)[x]/(poly)``, checked with a
  factored-order power test);
* :func:`direction_numbers` seeds each coordinate with deterministic odd
  initial direction integers and extends them with the classical Sobol
  recurrence;
* :class:`SobolSequence` generates consecutive points with the gray-code
  construction, which maps aligned ``2^k`` blocks onto aligned blocks — so
  block balance survives the incremental generator.

The number of constructible dimensions is bounded only by the brute-force
polynomial search (degrees 1..8 already give 50+ dimensions, far beyond the
ISCAS-89 input counts); direction-number tables are cached per
``(dim, bits)``.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["SobolSequence", "direction_numbers", "primitive_polynomials"]

#: Default direction-number precision (bits per coordinate).  32 keeps every
#: XOR inside uint64 with room to spare and is far below any point count the
#: samplers reach.
DEFAULT_BITS = 32


def _is_primitive(poly: int, deg: int) -> bool:
    """True when *poly* (degree *deg*, bit-encoded) is primitive over GF(2)."""
    order = (1 << deg) - 1
    if order == 1:
        return True

    def mulmod(a: int, b: int) -> int:
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if (a >> deg) & 1:
                a ^= poly
        return result

    def powmod(a: int, exponent: int) -> int:
        result = 1
        while exponent:
            if exponent & 1:
                result = mulmod(result, a)
            a = mulmod(a, a)
            exponent >>= 1
        return result

    # x (encoded as 2) must have full multiplicative order: x^order == 1 and
    # x^(order/p) != 1 for every prime factor p of the order.
    if powmod(2, order) != 1:
        return False
    remaining = order
    factor = 2
    prime_factors = set()
    while factor * factor <= remaining:
        while remaining % factor == 0:
            prime_factors.add(factor)
            remaining //= factor
        factor += 1
    if remaining > 1:
        prime_factors.add(remaining)
    return all(powmod(2, order // p) != 1 for p in prime_factors)


@functools.lru_cache(maxsize=None)
def primitive_polynomials(count: int) -> tuple[tuple[int, int], ...]:
    """First *count* primitive polynomials over GF(2), in degree order.

    Returns ``(degree, tail)`` pairs where ``tail`` holds the coefficients of
    ``x^(degree-1) .. x^0`` (the leading coefficient is implicit).  The
    constant term of a primitive polynomial is always 1, so only odd tails
    are examined.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    polys: list[tuple[int, int]] = []
    deg = 1
    while len(polys) < count:
        for tail in range(1, 1 << deg, 2):
            if _is_primitive((1 << deg) | tail, deg):
                polys.append((deg, tail))
                if len(polys) >= count:
                    break
        deg += 1
    return tuple(polys)


@functools.lru_cache(maxsize=None)
def direction_numbers(dim: int, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Direction-number table: ``(dim, bits)`` uint64, column *j* for bit *j*.

    Coordinate 0 is the van der Corput sequence (identity directions); every
    further coordinate gets its own primitive polynomial and deterministic
    odd initial direction integers ``m_k``, extended by the Sobol recurrence

    ``m_k = m_{k-deg} ^ (m_{k-deg} << deg) ^ XOR_i a_i (m_{k-i} << i)``.

    The returned array is cached and must be treated as read-only.
    """
    if dim < 1:
        raise ValueError("dim must be at least 1")
    if not 1 <= bits <= 62:
        raise ValueError("bits must lie in [1, 62]")
    table = np.zeros((dim, bits), dtype=np.uint64)
    for j in range(bits):
        table[0, j] = np.uint64(1) << np.uint64(bits - 1 - j)
    polys = primitive_polynomials(dim - 1)
    for d in range(1, dim):
        deg, tail = polys[d - 1]
        m = [1]
        for k in range(1, deg):
            m.append((2 * k + 1) % (1 << (k + 1)) | 1)
        coeffs = [(tail >> (deg - 1 - i)) & 1 for i in range(deg - 1)] if deg > 1 else []
        for k in range(deg, bits):
            new = m[k - deg] ^ (m[k - deg] << deg)
            for i in range(1, deg):
                if coeffs[i - 1]:
                    new ^= m[k - i] << i
            m.append(new)
        for j in range(bits):
            table[d, j] = np.uint64(m[j]) << np.uint64(bits - 1 - j)
    table.setflags(write=False)
    return table


class SobolSequence:
    """Incremental gray-code Sobol point generator.

    Produces consecutive points of the *dim*-dimensional Sobol sequence as
    uint64 coordinates in ``[0, 2^bits)``.  The only mutable state is the
    next point index, so checkpointing reduces to saving one integer
    (:attr:`index`).

    The gray-code construction emits points in gray-code order rather than
    natural order; within any aligned block of ``2^k`` consecutive indices
    the emitted point *set* equals the natural-order block (gray code
    permutes aligned blocks onto themselves), which is the balance property
    the stimuli rely on.
    """

    def __init__(self, dim: int, bits: int = DEFAULT_BITS, index: int = 0):
        if index < 0:
            raise ValueError("index must be non-negative")
        self.dim = dim
        self.bits = bits
        self._directions = direction_numbers(dim, bits)
        self.index = index

    def next_block(self, count: int) -> np.ndarray:
        """Return the next *count* points as a ``(count, dim)`` uint64 array."""
        if count < 0:
            raise ValueError("count must be non-negative")
        out = np.zeros((count, self.dim), dtype=np.uint64)
        for offset in range(count):
            gray = (self.index + offset) ^ ((self.index + offset) >> 1)
            point = np.zeros(self.dim, dtype=np.uint64)
            bit = 0
            while gray:
                if gray & 1:
                    point ^= self._directions[:, bit]
                gray >>= 1
                bit += 1
            out[offset] = point
        self.index += count
        return out

    def next_top_bits(self, count: int) -> np.ndarray:
        """Top bit of each coordinate for the next *count* points, uint8 ``(count, dim)``.

        The top bit of coordinate *d* answers "is the point in the upper half
        of axis *d*?" — the one-bit quantisation the toggle stimuli consume.
        """
        top = np.uint64(1) << np.uint64(self.bits - 1)
        return ((self.next_block(count) & top) != 0).astype(np.uint8)
