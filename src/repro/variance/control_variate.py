"""Control-variate power estimator: regress out the zero-delay component.

Under the event-driven power engine, every sampled cycle's glitch-inclusive
measurement ``y`` is strongly correlated with the *cheap* zero-delay
functional-transition count ``c`` of the very same cycle on the very same
lanes — the functional transitions are the bulk of both.  The classical
control-variate identity turns that correlation into variance reduction:

``z = y - beta * (c_measured - c_reference)``

has the same expectation as ``y`` whenever ``E[c_measured] =
E[c_reference]``, and for ``beta = cov(y, c) / var(c)`` its variance drops by
the squared correlation.  The reference here is the mean zero-delay switched
capacitance of the advance cycles inside the same sweep — cycles the
two-phase DIPE scheme simulates *anyway* to traverse the independence
interval, so the control is free: both ``c`` terms are stationary zero-delay
measurements and their expectation difference is exactly zero.

:class:`ControlVariateEstimator` runs the standard DIPE flow (warm-up,
runs-test interval selection, sequential stopping) but collects **sweep
triples** ``(mean y, mean c_measured, mean c_reference)`` per measured sweep
of the chain ensemble; ``beta`` is re-estimated online from all sweeps so
far, and the stopping criterion evaluates the adjusted sweep means ``z`` —
i.i.d. replicates, so the confidence interval is valid.  The widened cheap
window (``cheap_cycles`` advance measurements per sweep, default 16) keeps
the reference mean's own noise from eating the gain.

Registered as ``"control-variate"`` (alias ``"cv"``); requires the
event-driven power engine (under zero delay the control *is* the
measurement and the regression is degenerate).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterator

import numpy as np

from repro.api.checkpoint import RunCheckpoint
from repro.api.events import (
    EstimateCompleted,
    IntervalSelected,
    ProgressEvent,
    RunStarted,
    SampleProgress,
)
from repro.api.registry import register_estimator
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.interval import select_independence_interval
from repro.core.results import PowerEstimate
from repro.core.sampler import PowerSampler
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.stats.stopping import make_stopping_criterion
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource

__all__ = ["ControlVariateEstimator"]


@register_estimator("control-variate", aliases=("cv",))
class ControlVariateEstimator(DipeEstimator):
    """DIPE with an online-estimated zero-delay control variate.

    Parameters
    ----------
    circuit, stimulus, config, rng:
        As for :class:`~repro.core.dipe.DipeEstimator`.  The configuration
        must select ``power_simulator="event-driven"`` and the in-process
        sampler (``num_workers=1``, ``adaptive_chains=False``).
    cheap_cycles:
        Zero-delay advance measurements per sweep feeding the reference mean
        (at least 2; the sweep advances ``max(interval, cheap_cycles)``
        cycles, so values up to the independence interval are entirely free).

    The estimate's ``samples_switched_capacitance_f`` holds the *adjusted
    sweep means* ``z`` — the i.i.d. values the confidence interval is built
    from — rather than raw per-cycle samples; ``sample_size`` still counts
    raw per-chain samples so accounting matches the other estimators.
    """

    method = "control-variate"

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        cheap_cycles: int = 16,
    ):
        config = config or EstimationConfig()
        if config.power_simulator == "zero-delay":
            raise ValueError(
                "the control-variate estimator needs a power simulator whose "
                "measurement differs from the zero-delay control (use "
                "power_simulator='event-driven'); under zero delay the "
                "regression is degenerate"
            )
        if config.num_workers > 1:
            raise ValueError(
                "the control-variate estimator runs in-process; num_workers "
                "must be 1"
            )
        if config.adaptive_chains:
            raise ValueError(
                "the control-variate estimator needs a fixed sweep width; "
                "adaptive_chains must be off"
            )
        cheap_cycles = int(cheap_cycles)
        if cheap_cycles < 2:
            raise ValueError("cheap_cycles must be at least 2")
        super().__init__(circuit, stimulus=stimulus, config=config, rng=rng)
        self.cheap_cycles = cheap_cycles
        if isinstance(self.sampler, PowerSampler):
            # num_chains == 1 would build the single-chain sampler, which has
            # no control-measurement path; the batch sampler at width 1 is
            # its drop-in ensemble counterpart.
            self.sampler = BatchPowerSampler(self.circuit, self.stimulus, self.config, rng=rng)
        self.sample_group_width = self.sampler.num_chains
        # Stopping operates on adjusted sweep means, so the min-samples floor
        # counts sweeps (raw floor scaled down by the sweep width).
        self._sweep_criterion = make_stopping_criterion(
            self.config.stopping_criterion,
            max_relative_error=self.config.max_relative_error,
            confidence=self.config.confidence,
            min_samples=max(16, -(-self.config.min_samples // self.sample_group_width)),
        )
        self.stopping_criterion = self._sweep_criterion

    # ------------------------------------------------------------- estimation
    def _control_adjusted(self, triples: list[float]) -> tuple[np.ndarray, float | None]:
        """Adjusted sweep means ``z`` and the effective sample size.

        ``beta`` is the regression coefficient of the sweep means on the
        mean-zero control differences, re-estimated from all sweeps so far
        (0 until two sweeps exist or the control is degenerate).
        """
        arr = np.asarray(triples, dtype=np.float64).reshape(-1, 3)
        y = arr[:, 0]
        d = arr[:, 1] - arr[:, 2]
        beta = 0.0
        if len(arr) >= 2:
            var_d = float(d.var(ddof=1))
            if var_d > 0.0:
                beta = float(np.cov(y, d)[0, 1] / var_d)
        z = y - beta * d
        ess = None
        if len(arr) >= 2:
            var_y = float(y.var(ddof=1))
            var_z = float(z.var(ddof=1))
            if var_y > 0.0 and var_z > 0.0:
                ess = len(arr) * self.sample_group_width * var_y / var_z
        return z, ess

    def run(self, resume_from: RunCheckpoint | None = None) -> Iterator[ProgressEvent]:
        """Execute the control-variate flow incrementally (see base class).

        Checkpoints store the flat sweep triples ``(y, c_measured,
        c_reference) * sweeps`` in the ``samples`` slot; the ``method`` tag
        keeps them from being resumed by a plain DIPE estimator and vice
        versa.
        """
        config = self.config
        power_model = config.power_model
        circuit_name = self.circuit.name
        width = self.sample_group_width
        start_time = time.perf_counter()
        elapsed_before = 0.0

        if resume_from is None:
            yield RunStarted(
                circuit=circuit_name, method=self.method, samples_drawn=0, cycles_simulated=0
            )
            self.sampler.prepare(config.warmup_cycles)
            interval_result = select_independence_interval(self.sampler, config)
            triples: list[float] = []
        else:
            self._validate_checkpoint(resume_from)
            if resume_from.interval_selection is None:
                raise ValueError("control-variate checkpoints must carry the interval selection")
            if len(resume_from.samples) % 3 != 0:
                raise ValueError(
                    "control-variate checkpoints store sweep triples; "
                    f"got {len(resume_from.samples)} values (not a multiple of 3)"
                )
            elapsed_before = resume_from.elapsed_seconds
            self.sampler.set_state(resume_from.sampler_state)
            interval_result = resume_from.interval_selection
            triples = list(resume_from.samples)

        def raw_count() -> int:
            return (len(triples) // 3) * width

        self._samples = triples
        self._interval_result = interval_result
        self._elapsed_seconds = elapsed_before + (time.perf_counter() - start_time)
        interval = interval_result.interval
        yield IntervalSelected(
            circuit=circuit_name,
            method=self.method,
            samples_drawn=raw_count(),
            cycles_simulated=self.sampler.cycles_simulated,
            interval=interval,
            converged=interval_result.converged,
            num_trials=interval_result.num_trials,
            selection=interval_result,
        )

        sweeps_per_check = max(1, -(-config.check_interval // width))
        z, ess = self._control_adjusted(triples)
        decision = dataclasses.replace(
            self._sweep_criterion.evaluate(z.tolist()), sample_size=raw_count()
        )
        while not decision.should_stop and raw_count() < config.max_samples:
            for _ in range(sweeps_per_check):
                samples, controls, cheap_mean = self.sampler.next_samples_with_control(
                    interval, self.cheap_cycles
                )
                triples.extend(
                    (float(samples.mean()), float(controls.mean()), cheap_mean)
                )
            z, ess = self._control_adjusted(triples)
            decision = dataclasses.replace(
                self._sweep_criterion.evaluate(z.tolist()), sample_size=raw_count()
            )
            self._elapsed_seconds = elapsed_before + (time.perf_counter() - start_time)
            yield SampleProgress(
                circuit=circuit_name,
                method=self.method,
                samples_drawn=raw_count(),
                cycles_simulated=self.sampler.cycles_simulated,
                running_mean_w=power_model.cycle_power(max(decision.estimate, 0.0)),
                lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
                upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
                relative_half_width=decision.relative_half_width,
                accuracy_met=decision.should_stop,
                num_workers=1,
                effective_sample_size=ess,
            )

        elapsed = elapsed_before + (time.perf_counter() - start_time)
        estimate = PowerEstimate(
            circuit_name=circuit_name,
            method=self.method,
            average_power_w=power_model.cycle_power(decision.estimate),
            lower_bound_w=power_model.cycle_power(max(decision.lower, 0.0)),
            upper_bound_w=power_model.cycle_power(max(decision.upper, 0.0)),
            relative_half_width=decision.relative_half_width,
            sample_size=raw_count(),
            independence_interval=interval,
            cycles_simulated=self.sampler.cycles_simulated,
            elapsed_seconds=elapsed,
            stopping_criterion=self._sweep_criterion.name,
            accuracy_met=decision.should_stop,
            interval_selection=interval_result,
            effective_sample_size=ess,
            samples_switched_capacitance_f=tuple(float(value) for value in z),
        )
        yield EstimateCompleted(
            circuit=circuit_name,
            method=self.method,
            samples_drawn=raw_count(),
            cycles_simulated=self.sampler.cycles_simulated,
            estimate=estimate,
        )
