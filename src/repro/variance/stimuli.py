"""Lane-coupled variance-reduction stimuli for the multi-chain sampler.

All three stimuli operate in **toggle (transition) space**: they keep the
current input levels of every lane as internal state, draw a matrix of
*toggle* bits each cycle, and XOR the toggles into the levels.  Dynamic
power is driven by input transitions, not input levels — at ``p = 0.5``,
complementing the level stream leaves the transition stream unchanged, so
coupling levels across lanes achieves nothing.  Coupling the *toggles* is
what transfers onto power (established empirically during bring-up and
pinned by ``benchmarks/test_bench_variance.py``).

The coupling schemes:

* :class:`AntitheticStimulus` — adjacent lanes ``(2k, 2k+1)`` receive exactly
  complementary toggle streams (lane ``2k+1`` toggles an input iff lane
  ``2k`` does not).  Pairs are adjacent uint64 lanes in the packed
  ``(num_inputs, num_words)`` pattern words, so the pairing is free: it
  survives word-aligned sharding untouched and no lane permutation is ever
  needed.
* :class:`StratifiedStimulus` — a Latin-hypercube design per input: each
  cycle, every input's toggle probabilities are jitter-stratified over the
  lanes so the input toggles in *exactly* half the lanes (lane assignment
  random).  The per-sweep toggle density of every input is pinned to 0.5
  with zero variance.
* :class:`SobolStimulus` — one scrambled-Sobol coordinate per input; each
  cycle consumes one aligned block of ``width`` consecutive points, and the
  top bit of coordinate *d* (freshly scrambled: a per-cycle digital shift
  XOR plus a per-cycle random lane permutation) becomes input *d*'s toggle
  in each lane.  Aligned ``2^k`` blocks of a Sobol net are balanced in every
  coordinate *and* well-spread in coordinate pairs, so joint toggle patterns
  across inputs are balanced too — typically the strongest coupling of the
  three on circuits with wide input cones.

**Unbiasedness** is exact and structural: every single lane's toggle stream
is marginally i.i.d. Bernoulli(0.5) — for Sobol and stratified draws because
XOR-ing/jittering with fresh independent uniform randomness each cycle makes
each lane's bits exactly uniform; for antithetic pairs because the
complement of a Bernoulli(0.5) stream is again Bernoulli(0.5).  Each chain
is therefore distributed *identically* to one driven by
:class:`~repro.stimulus.random_inputs.BernoulliStimulus`; only the
*cross-lane* dependence differs.  That dependence is exactly why the flat
per-sample confidence interval is no longer valid, and why estimators group
samples per sweep (see :class:`~repro.stats.stopping.GroupedStoppingCriterion`)
when a stimulus declares :attr:`~repro.stimulus.base.Stimulus.lanes_dependent`.

All three only support ``probability = 0.5`` (the paper's setting): the
toggle rate of a stationary Bernoulli(p) level stream is ``2 p (1-p)`` and
its toggles are no longer independent of its levels for ``p != 0.5``, so the
toggle-space constructions would bias the input law.  A clear error refuses
anything else.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_stimulus
from repro.stimulus.base import Stimulus
from repro.variance.sobol import DEFAULT_BITS, SobolSequence

__all__ = ["AntitheticStimulus", "SobolStimulus", "StratifiedStimulus"]


class _ToggleCoupledStimulus(Stimulus):
    """Shared machinery: per-lane level state updated by coupled toggle draws.

    The first :meth:`next_bits` call of a run (or after a width change, which
    only happens when an adaptive ensemble is rebuilt) draws independent
    uniform initial levels; every later call XORs a freshly drawn toggle
    matrix into the levels.  Subclasses implement :meth:`_toggles`.
    """

    lanes_dependent = True

    def __init__(self, num_inputs: int, probability: float = 0.5):
        super().__init__(num_inputs)
        probability = float(probability)
        if probability != 0.5:
            raise ValueError(
                f"{type(self).__name__} only supports probability=0.5 "
                f"(got {probability!r}): its toggle-space coupling is only "
                f"unbiased for balanced inputs"
            )
        self.probability = probability
        self._levels: np.ndarray | None = None

    def _toggles(self, rng: np.random.Generator, width: int) -> np.ndarray:
        """Return the coupled ``(num_inputs, width)`` uint8 toggle matrix."""
        raise NotImplementedError

    def _check_width(self, width: int) -> None:
        """Hook for subclasses with lane-count constraints (default: none)."""

    def next_bits(self, rng: np.random.Generator, width: int = 1) -> np.ndarray:
        self._check_width(width)
        if self.num_inputs == 0:
            return np.zeros((0, width), dtype=np.uint8)
        if self._levels is None or self._levels.shape[1] != width:
            self._levels = rng.integers(0, 2, size=(self.num_inputs, width), dtype=np.uint8)
        else:
            self._levels = self._levels ^ self._toggles(rng, width)
        return self._levels

    def reset(self) -> None:
        self._levels = None

    def get_state(self):
        return None if self._levels is None else self._levels.copy()

    def set_state(self, state) -> None:
        self._levels = None if state is None else np.asarray(state, dtype=np.uint8).copy()

    def describe(self) -> str:
        return f"{type(self).__name__}(inputs={self.num_inputs}, p=0.5)"


@register_stimulus("antithetic")
class AntitheticStimulus(_ToggleCoupledStimulus):
    """Complementary toggle streams on adjacent lane pairs.

    Lane ``2k+1`` toggles an input exactly when lane ``2k`` does not, so the
    pair's toggle counts per input sum to a constant every cycle and the
    positively-correlated component of the pair's power samples cancels in
    the pair mean.  Initial levels are independent per lane, keeping every
    lane marginally Bernoulli(0.5).

    Requires an even lane count (``EstimationConfig(num_chains=2, 4, ...)``):
    an unpaired trailing lane would break the pairing invariant silently, so
    odd widths are rejected loudly instead.
    """

    def _check_width(self, width: int) -> None:
        if width % 2 != 0:
            raise ValueError(
                f"AntitheticStimulus pairs adjacent lanes and needs an even "
                f"number of chains, got width={width}; set "
                f"EstimationConfig(num_chains=...) to an even value"
            )

    def _toggles(self, rng: np.random.Generator, width: int) -> np.ndarray:
        half = rng.integers(0, 2, size=(self.num_inputs, width // 2), dtype=np.uint8)
        toggles = np.empty((self.num_inputs, width), dtype=np.uint8)
        toggles[:, 0::2] = half
        toggles[:, 1::2] = half ^ 1
        return toggles


@register_stimulus("stratified")
class StratifiedStimulus(_ToggleCoupledStimulus):
    """Latin-hypercube-stratified toggles: every input toggles in exactly
    ``width / 2`` lanes per cycle.

    Each input independently places one jittered point per lane on a
    ``width``-cell stratification of [0, 1) and toggles where the point falls
    below 0.5 — a randomised balanced design whose per-lane marginal is
    exactly Bernoulli(0.5).  With ``width = 1`` the construction degrades
    gracefully to plain independent toggles.
    """

    def _toggles(self, rng: np.random.Generator, width: int) -> np.ndarray:
        shape = (self.num_inputs, width)
        strata = np.argsort(rng.random(shape), axis=1)
        positions = (strata + rng.random(shape)) / width
        return (positions < 0.5).astype(np.uint8)


@register_stimulus("sobol")
class SobolStimulus(_ToggleCoupledStimulus):
    """Scrambled Sobol (QMC) toggles: one net coordinate per primary input.

    Each cycle consumes one aligned block of ``width`` consecutive points
    from a private :class:`~repro.variance.sobol.SobolSequence` (own
    direction-number table, no scipy).  The block is re-scrambled *per
    cycle* — a fresh digital-shift XOR of each coordinate's top bit plus a
    fresh random lane permutation — before its top bits become the lanes'
    toggles.  Per-cycle re-scrambling is essential: a scramble fixed for the
    whole run would pin each lane to a fixed stratum of the net and the
    resulting persistent lane offsets would *inflate* the sweep-mean
    variance instead of shrinking it.

    The XOR scrambling makes each lane's toggles exactly i.i.d. uniform
    (marginally identical to Bernoulli(0.5) inputs); only the cross-lane
    joint distribution carries the net's balance.

    Parameters
    ----------
    num_inputs:
        Primary inputs; one Sobol coordinate each.
    probability:
        Must be 0.5 (see module docstring).
    bits:
        Direction-number precision; the default (32) is ample for any
        reachable point index.
    """

    def __init__(self, num_inputs: int, probability: float = 0.5, bits: int = DEFAULT_BITS):
        super().__init__(num_inputs, probability)
        self._sequence = SobolSequence(max(1, num_inputs), bits=bits)

    def _toggles(self, rng: np.random.Generator, width: int) -> np.ndarray:
        base = self._sequence.next_top_bits(width)  # (width, num_inputs)
        flip = rng.integers(0, 2, size=self.num_inputs, dtype=np.uint8)
        perm = rng.permutation(width)
        return (base[perm] ^ flip[None, :]).T

    def reset(self) -> None:
        super().reset()
        self._sequence.index = 0

    def get_state(self):
        return {
            "levels": None if self._levels is None else self._levels.copy(),
            "index": int(self._sequence.index),
        }

    def set_state(self, state) -> None:
        if state is None:
            self._levels = None
            self._sequence.index = 0
            return
        levels = state["levels"]
        self._levels = None if levels is None else np.asarray(levels, dtype=np.uint8).copy()
        self._sequence.index = int(state["index"])
