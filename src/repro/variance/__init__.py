"""Variance-reduction subsystem: fewer samples for the same confidence.

The DIPE flow estimates average power as the mean of i.i.d. per-cycle
switched-capacitance samples; its cost is the number of simulated cycles
needed before the stopping criterion's confidence interval closes.  This
package shrinks that cost without touching the estimand, through two
orthogonal families of techniques:

* **Lane-coupled stimuli** (:mod:`repro.variance.stimuli`) —
  :class:`AntitheticStimulus`, :class:`StratifiedStimulus` and
  :class:`SobolStimulus` drive the multi-chain batch sampler's lanes with
  *negatively correlated* input-toggle streams while keeping every single
  lane marginally identical to independent Bernoulli(0.5) inputs.  Per-sweep
  ensemble means then have lower variance than independent lanes would give,
  and the sweep-grouped stopping criterion
  (:class:`~repro.stats.stopping.GroupedStoppingCriterion`) converts that
  into an earlier, still-valid stop.
* **Control variates** (:mod:`repro.variance.control_variate`) —
  :class:`ControlVariateEstimator` measures the cheap zero-delay toggle
  estimate alongside the event-driven (glitch) estimate on the *same* lanes
  and regresses out the correlated component, with the optimal coefficient
  estimated online.

:mod:`repro.variance.accumulators` supplies the
:class:`PairedMeanAccumulator` that tracks the effective sample size of the
coupled draws; estimators surface it in
:class:`~repro.api.events.SampleProgress` events and
:class:`~repro.core.results.PowerEstimate` diagnostics.

All components register through the standard plugin registries
(``"antithetic"``, ``"stratified"``, ``"sobol"`` stimuli; the
``"control-variate"`` estimator), so they compose with the CLI, the batch
runner and the estimation service exactly like the built-ins.  See
``docs/variance.md`` for when each technique helps and
``benchmarks/test_bench_variance.py`` for the measured gains.
"""

from repro.variance.accumulators import PairedMeanAccumulator
from repro.variance.control_variate import ControlVariateEstimator
from repro.variance.sobol import SobolSequence, direction_numbers
from repro.variance.stimuli import (
    AntitheticStimulus,
    SobolStimulus,
    StratifiedStimulus,
)

__all__ = [
    "AntitheticStimulus",
    "ControlVariateEstimator",
    "PairedMeanAccumulator",
    "SobolSequence",
    "SobolStimulus",
    "StratifiedStimulus",
    "direction_numbers",
]
