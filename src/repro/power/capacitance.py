"""Node (net) capacitance model.

Each net's switched capacitance is the sum of the driving cell's output
capacitance and the input capacitance of every sink it fans out to.  The
paper notes that ``C_i`` "can be adjusted to take into account additional
contributions from short circuit current, internal capacitance
charging/discharging, etc." — those second-order effects are folded into a
single multiplicative ``overhead_factor`` here.

Default values are representative of a 1990s standard-cell library (tens of
femtofarads per node); the statistical behaviour studied in the paper does
not depend on their absolute magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.compiled import CompiledCircuit


@dataclass(frozen=True)
class CapacitanceModel:
    """Fanout-based net capacitance model.

    Attributes
    ----------
    output_capacitance_f:
        Intrinsic output (drain/diffusion + wire stub) capacitance of the
        driving cell, in farads.
    input_capacitance_f:
        Gate input capacitance added per fanout sink, in farads.
    latch_input_capacitance_f:
        Input capacitance of a flip-flop D pin, in farads (flip-flop inputs
        are typically heavier than plain gate inputs).
    primary_output_capacitance_f:
        Load presented by a primary output (pad / next block), in farads.
    overhead_factor:
        Multiplicative factor folding in short-circuit and internal-node
        power (1.0 = pure external switching power).
    """

    output_capacitance_f: float = 8e-15
    input_capacitance_f: float = 4e-15
    latch_input_capacitance_f: float = 6e-15
    primary_output_capacitance_f: float = 20e-15
    overhead_factor: float = 1.15

    def __post_init__(self) -> None:
        for field_name in (
            "output_capacitance_f",
            "input_capacitance_f",
            "latch_input_capacitance_f",
            "primary_output_capacitance_f",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.overhead_factor <= 0:
            raise ValueError("overhead_factor must be positive")

    def node_capacitances(self, circuit: CompiledCircuit) -> list[float]:
        """Return the capacitance of every net of *circuit*, indexed by net id."""
        gate_input_sinks = [0] * circuit.num_nets
        for gate in circuit.gates:
            for src in gate.inputs:
                gate_input_sinks[src] += 1

        latch_input_sinks = [0] * circuit.num_nets
        for d_id in circuit.latch_d:
            latch_input_sinks[d_id] += 1

        po_sinks = [0] * circuit.num_nets
        for po_id in circuit.primary_outputs:
            po_sinks[po_id] += 1

        capacitances = []
        for net_id in range(circuit.num_nets):
            cap = (
                self.output_capacitance_f
                + gate_input_sinks[net_id] * self.input_capacitance_f
                + latch_input_sinks[net_id] * self.latch_input_capacitance_f
                + po_sinks[net_id] * self.primary_output_capacitance_f
            )
            capacitances.append(cap * self.overhead_factor)
        return capacitances

    def total_capacitance(self, circuit: CompiledCircuit) -> float:
        """Total switchable capacitance of the circuit (farads)."""
        return sum(self.node_capacitances(circuit))
