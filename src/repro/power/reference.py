"""Long-run reference ("SIM") power estimator.

Table 1 of the paper compares every statistical estimate against "SIM", the
average of the power dissipated in one million consecutive clock cycles.  A
single-chain simulation of a million cycles is impractical for the larger
circuits, so this estimator exploits ergodicity instead: it is a thin wrapper
over the multi-chain batch engine
(:class:`~repro.core.batch_sampler.BatchPowerSampler`), running many
independent lanes through the word-sliced zero-delay simulator, discarding a
warm-up prefix from each lane, and averaging the switched capacitance over
``lanes x cycles_per_lane`` measured cycles.  For a stationary, ergodic power
process the ensemble-and-time average converges to the same mean as the
paper's single long time average; with the default settings the reference is
accurate to well under 1 %, an order of magnitude tighter than the 5 % error
bound the statistical estimators are asked to meet.

With the default ``backend="auto"`` the batch engine picks the vectorized
numpy backend for wide ensembles, which is what makes large reference budgets
(hundreds of thousands of cycles) cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of a reference power simulation.

    Attributes
    ----------
    circuit_name:
        Name of the simulated circuit.
    average_power_w:
        Estimated average power in watts.
    average_switched_capacitance_f:
        Mean switched capacitance per cycle, in farads.
    total_cycles:
        Number of measured cycles (lanes x cycles per lane).
    lanes:
        Number of independent simulation lanes used.
    warmup_cycles:
        Cycles discarded from each lane before measuring.
    elapsed_seconds:
        Wall-clock time spent in the simulation.
    """

    circuit_name: str
    average_power_w: float
    average_switched_capacitance_f: float
    total_cycles: int
    lanes: int
    warmup_cycles: int
    elapsed_seconds: float

    @property
    def average_power_mw(self) -> float:
        """Average power in milliwatts (the unit used by the paper's tables)."""
        return self.average_power_w * 1e3


def estimate_reference_power(
    circuit,
    stimulus: Stimulus,
    total_cycles: int = 100_000,
    lanes: int = 64,
    warmup_cycles: int = 256,
    power_model: PowerModel | None = None,
    capacitance_model: CapacitanceModel | None = None,
    rng: RandomSource = None,
    backend: str = "auto",
) -> ReferenceResult:
    """Estimate the circuit's true average power by long ensemble simulation.

    Parameters
    ----------
    circuit:
        Compiled circuit (a structural netlist or prebuilt
        :class:`~repro.circuits.program.CircuitProgram` is accepted too).
    stimulus:
        Primary-input pattern generator.
    total_cycles:
        Total number of *measured* cycles across all lanes (the paper uses
        1,000,000 consecutive cycles; 100,000 is the default here and the
        experiment harnesses can raise it).
    lanes:
        Number of independent chains simulated in parallel.
    warmup_cycles:
        Cycles simulated (per lane) before measurement starts so every lane
        has forgotten its random initial state.
    power_model / capacitance_model:
        Electrical models; defaults are the paper's 5 V / 20 MHz operating
        point and the default standard-cell capacitances.
    rng:
        Seed or generator for reproducibility.
    backend:
        Simulator backend handed to the batch engine (``"auto"``,
        ``"bigint"`` or ``"numpy"``).
    """
    # Imported lazily: repro.core.config itself imports the power package, so
    # a module-level import here would be circular.
    from repro.circuits.program import as_compiled_circuit
    from repro.core.batch_sampler import BatchPowerSampler
    from repro.core.config import EstimationConfig

    circuit = as_compiled_circuit(circuit)

    if total_cycles < 1:
        raise ValueError("total_cycles must be at least 1")
    if lanes < 1:
        raise ValueError("lanes must be at least 1")

    power_model = power_model or PowerModel()
    config = EstimationConfig(
        warmup_cycles=warmup_cycles,
        power_model=power_model,
        capacitance_model=capacitance_model or CapacitanceModel(),
    )
    sampler = BatchPowerSampler(
        circuit, stimulus, config=config, rng=rng, num_chains=lanes, backend=backend
    )

    start = time.perf_counter()
    sampler.prepare(warmup_cycles)
    cycles_per_lane = max(1, (total_cycles + lanes - 1) // lanes)
    total_switched = 0.0
    for _ in range(cycles_per_lane):
        total_switched += sampler.measure_cycle_total()
    elapsed = time.perf_counter() - start

    measured_cycles = cycles_per_lane * lanes
    mean_switched = total_switched / measured_cycles
    return ReferenceResult(
        circuit_name=circuit.name,
        average_power_w=power_model.cycle_power(mean_switched),
        average_switched_capacitance_f=mean_switched,
        total_cycles=measured_cycles,
        lanes=lanes,
        warmup_cycles=warmup_cycles,
        elapsed_seconds=elapsed,
    )
