"""Power modelling: node capacitance, the dynamic power equation, and the
long-run reference ("SIM") estimator.

The power of one clock cycle follows Eq. (1) of the paper::

    P = Vdd^2 / (2 T) * sum_i C_i * n_i

where ``C_i`` is the load capacitance of net *i* and ``n_i`` the number of
transitions it makes during the cycle.  The simulators report the switched
capacitance ``sum_i C_i * n_i``; :class:`~repro.power.power_model.PowerModel`
converts it to energy and average power for a supply voltage and clock
frequency (5 V and 20 MHz in the paper's experiments).
"""

from repro.power.breakdown import NetPower, PowerBreakdown, power_breakdown
from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.power.reference import ReferenceResult, estimate_reference_power

__all__ = [
    "CapacitanceModel",
    "PowerModel",
    "ReferenceResult",
    "estimate_reference_power",
    "NetPower",
    "PowerBreakdown",
    "power_breakdown",
]
