"""Dynamic power equation (Eq. (1) of the paper).

The simulators report the switched capacitance of a clock cycle,
``sum_i C_i * n_i``.  :class:`PowerModel` holds the electrical operating
point (supply voltage, clock period) and converts switched capacitance to
per-cycle energy and to average power.  The paper's experiments use a 5 V
supply and a 20 MHz clock; those are the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class PowerModel:
    """Electrical operating point for power computation.

    Attributes
    ----------
    vdd:
        Supply voltage in volts.
    clock_frequency_hz:
        Clock frequency in hertz; the clock period ``T`` is its reciprocal.
    """

    vdd: float = 5.0
    clock_frequency_hz: float = 20e6

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.clock_frequency_hz <= 0:
            raise ValueError("clock_frequency_hz must be positive")

    @property
    def clock_period_s(self) -> float:
        """Clock period ``T`` in seconds."""
        return 1.0 / self.clock_frequency_hz

    def cycle_energy(self, switched_capacitance_f: float) -> float:
        """Energy (joules) dissipated in a cycle that switched the given capacitance.

        ``E = 1/2 * Vdd^2 * sum_i C_i n_i`` — each transition charges or
        discharges its node through the supply, dissipating ``C V^2 / 2``.
        """
        if switched_capacitance_f < 0:
            raise ValueError("switched capacitance cannot be negative")
        return 0.5 * self.vdd * self.vdd * switched_capacitance_f

    def cycle_power(self, switched_capacitance_f: float) -> float:
        """Power (watts) if every cycle switched the given capacitance: ``E / T``."""
        return self.cycle_energy(switched_capacitance_f) * self.clock_frequency_hz

    def average_power(self, switched_capacitances_f: Iterable[float]) -> float:
        """Average power (watts) over a sample of per-cycle switched capacitances."""
        values = list(switched_capacitances_f)
        if not values:
            raise ValueError("average_power requires at least one sample")
        return self.cycle_power(sum(values) / len(values))

    def to_milliwatts(self, watts: float) -> float:
        """Convenience conversion used by the experiment reports."""
        return watts * 1e3
