"""Per-net power breakdown reports.

Beyond the single average-power number the paper's tables report, designers
usually want to know *where* the power goes.  This module combines a measured
switching-activity record with the capacitance and power models to produce a
per-net breakdown: each net's average switched capacitance, its power
contribution, and its share of the total.  The breakdown uses the same
simulation substrate as the estimators, so its total is consistent with the
reference estimator for the same cycle budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.simulation.activity import ActivityRecord, collect_activity
from repro.simulation.compiled import CompiledCircuit
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class NetPower:
    """Average power attributed to one net."""

    net: str
    transition_density: float
    capacitance_f: float
    power_w: float
    share: float


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-net power attribution for one circuit under one stimulus."""

    circuit_name: str
    cycles: int
    total_power_w: float
    nets: tuple[NetPower, ...]

    @property
    def total_power_mw(self) -> float:
        """Total power in milliwatts."""
        return self.total_power_w * 1e3

    def top(self, count: int = 10) -> tuple[NetPower, ...]:
        """The *count* nets with the largest power contribution."""
        return self.nets[:count]

    def cumulative_share(self, count: int) -> float:
        """Fraction of total power covered by the top *count* nets."""
        return sum(net.share for net in self.nets[:count])

    def render(self, count: int = 15) -> str:
        """Format the top contributors as an aligned text table."""
        table = TextTable(
            headers=["Net", "Transitions/cycle", "Cap (fF)", "Power (uW)", "Share (%)"],
            precision=3,
        )
        for net in self.top(count):
            table.add_row(
                [
                    net.net,
                    net.transition_density,
                    net.capacitance_f * 1e15,
                    net.power_w * 1e6,
                    100.0 * net.share,
                ]
            )
        header = (
            f"Power breakdown of {self.circuit_name}: total "
            f"{self.total_power_mw:.4f} mW over {self.cycles} cycles"
        )
        return header + "\n" + table.render()


def power_breakdown(
    circuit: CompiledCircuit,
    stimulus: Stimulus,
    cycles: int = 5_000,
    power_model: PowerModel | None = None,
    capacitance_model: CapacitanceModel | None = None,
    rng: RandomSource = None,
    activity: ActivityRecord | None = None,
) -> PowerBreakdown:
    """Attribute average power to individual nets by simulation.

    Parameters
    ----------
    circuit / stimulus / cycles / rng:
        Simulation setup; *cycles* measured clock cycles are simulated unless
        a pre-collected *activity* record is supplied.
    power_model / capacitance_model:
        Electrical models (defaults match the paper's operating point).
    activity:
        Optional pre-measured :class:`ActivityRecord` (e.g. reused from a
        previous analysis) — must describe the same circuit.
    """
    power_model = power_model or PowerModel()
    capacitance_model = capacitance_model or CapacitanceModel()

    if activity is None:
        activity = collect_activity(circuit, stimulus, cycles=cycles, rng=rng)
    elif activity.circuit_name != circuit.name:
        raise ValueError(f"activity record is for {activity.circuit_name!r}, not {circuit.name!r}")

    node_caps = capacitance_model.node_capacitances(circuit)
    per_net_power = [
        power_model.cycle_power(node_caps[net_id] * activity.transition_density[net_id])
        for net_id in range(circuit.num_nets)
    ]
    total = sum(per_net_power)

    nets = [
        NetPower(
            net=circuit.net_names[net_id],
            transition_density=activity.transition_density[net_id],
            capacitance_f=node_caps[net_id],
            power_w=per_net_power[net_id],
            share=(per_net_power[net_id] / total) if total > 0 else 0.0,
        )
        for net_id in range(circuit.num_nets)
    ]
    nets.sort(key=lambda net: -net.power_w)

    return PowerBreakdown(
        circuit_name=circuit.name,
        cycles=activity.cycles,
        total_power_w=total,
        nets=tuple(nets),
    )
