"""Dichotomisation and randomness testing of real-valued power sequences.

The ordinary runs test only handles two-symbol sequences, so a power sequence
must first be dichotomised (Section III.B): values below the sample median
become one symbol, values above it the other.  Values exactly equal to the
median carry no ordering information and are dropped, which keeps the symbol
counts balanced for heavily quantised power data (small circuits dissipate
only a handful of distinct per-cycle energies, so exact ties are common).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.stats.runs_test import RunsTestResult, runs_test


def dichotomize(values: Sequence[float]) -> list[int]:
    """Convert a real-valued sequence into 0/1 symbols about its median.

    Values strictly below the median map to 0, values strictly above map to
    1, and exact ties with the median are removed (standard practice for the
    runs-above-and-below-the-median test).  The relative order of the
    retained values is preserved.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return []
    median = float(np.median(data))
    symbols = [0 if value < median else 1 for value in data if value != median]
    return symbols


def runs_test_on_values(
    values: Sequence[float], significance_level: float = 0.20
) -> RunsTestResult:
    """Dichotomise *values* about their median and run the ordinary runs test."""
    symbols = dichotomize(values)
    if len(symbols) < 2:
        # Everything equal to the median: no evidence of serial dependence.
        return RunsTestResult(
            num_runs=len(symbols),
            num_first=sum(1 for s in symbols if s == 0),
            num_second=sum(1 for s in symbols if s == 1),
            z_statistic=0.0,
            critical_value=float("inf"),
            significance_level=significance_level,
            accepted=True,
            p_value=1.0,
            degenerate=True,
        )
    return runs_test(symbols, significance_level=significance_level)


def thin_sequence(values: Sequence[float], interval: int) -> list[float]:
    """Keep every ``(interval + 1)``-th element of *values*.

    ``interval`` is the number of skipped elements between two retained ones,
    matching the paper's definition of the independence interval (an interval
    of 0 keeps every element).
    """
    if interval < 0:
        raise ValueError("interval must be non-negative")
    return list(values[:: interval + 1])


def lag_autocorrelation(values: Sequence[float], lag: int = 1) -> float:
    """Sample autocorrelation of *values* at the given *lag*.

    Used by diagnostics and tests to confirm that thinning by the selected
    independence interval indeed removes most of the serial correlation.
    Returns 0.0 for degenerate (constant or too short) sequences.
    """
    if lag < 1:
        raise ValueError("lag must be at least 1")
    data = np.asarray(list(values), dtype=float)
    if data.size <= lag:
        return 0.0
    centred = data - data.mean()
    denominator = float(np.dot(centred, centred))
    if denominator == 0.0:
        return 0.0
    numerator = float(np.dot(centred[:-lag], centred[lag:]))
    return numerator / denominator
