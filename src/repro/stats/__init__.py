"""Statistical machinery: the runs test, dichotomisation, and stopping criteria.

This package implements the statistics that make the paper's approach work:

* the ordinary runs test for randomness (Section III.A), including the
  continuity-corrected z statistic of Eq. (4) and the critical value of
  Eq. (7);
* dichotomisation of a real-valued power sequence about its median, which
  turns it into the two-symbol sequence the runs test requires
  (Section III.B);
* stopping criteria (Section IV) that watch the growing random power sample
  and terminate the simulation once the requested accuracy and confidence
  are met — the distribution-independent order-statistics criterion used by
  the paper, plus CLT-based and Kolmogorov–Smirnov-based alternatives.
"""

from repro.stats.descriptive import SampleSummary, summarize
from repro.stats.randomness import (
    dichotomize,
    runs_test_on_values,
    thin_sequence,
)
from repro.stats.runs_test import RunsTestResult, critical_value, runs_test
from repro.stats.stopping import (
    CltStoppingCriterion,
    KolmogorovSmirnovStoppingCriterion,
    OrderStatisticStoppingCriterion,
    StoppingCriterion,
    StoppingDecision,
    make_stopping_criterion,
)

__all__ = [
    "RunsTestResult",
    "critical_value",
    "runs_test",
    "dichotomize",
    "runs_test_on_values",
    "thin_sequence",
    "SampleSummary",
    "summarize",
    "StoppingCriterion",
    "StoppingDecision",
    "CltStoppingCriterion",
    "OrderStatisticStoppingCriterion",
    "KolmogorovSmirnovStoppingCriterion",
    "make_stopping_criterion",
]
