"""Ordinary runs test for randomness (Section III.A of the paper).

Given an ordered sequence over two symbols, a *run* is a maximal block of
identical symbols.  Under the hypothesis that the sequence is random (every
arrangement of the symbols equally likely), the number of runs ``U`` is
asymptotically normal with

    mean  = 1 + 2 m n / N
    stdev = sqrt( 2 m n (2 m n - N) / (N^2 (N - 1)) )

where ``m`` and ``n`` are the symbol counts and ``N = m + n``.  The test
statistic uses the continuity correction of Eq. (4); the hypothesis is
accepted at significance level ``alpha`` when ``|z| <= c`` with
``c = Phi^{-1}(1 - alpha / 2)`` (Eq. (7)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy.stats import norm


@dataclass(frozen=True)
class RunsTestResult:
    """Outcome of one ordinary runs test.

    Attributes
    ----------
    num_runs:
        Observed number of runs ``U``.
    num_first / num_second:
        Counts of the two symbols (``m`` and ``n`` in the paper).
    z_statistic:
        Continuity-corrected z value of Eq. (4).
    critical_value:
        Acceptance threshold ``c`` for the requested significance level.
    significance_level:
        The ``alpha`` used for the accept/reject decision.
    accepted:
        ``True`` when ``|z| <= c`` — the randomness hypothesis is retained.
    p_value:
        Two-sided p-value of the observed ``z``.
    degenerate:
        ``True`` when the sequence contained only one symbol, making the
        test statistic undefined; such sequences are treated as accepted
        (there is no evidence of serial dependence in a constant sequence)
        but flagged so callers can react.
    """

    num_runs: int
    num_first: int
    num_second: int
    z_statistic: float
    critical_value: float
    significance_level: float
    accepted: bool
    p_value: float
    degenerate: bool = False

    @property
    def sequence_length(self) -> int:
        """Total number of symbols tested (``N = m + n``)."""
        return self.num_first + self.num_second


def critical_value(significance_level: float) -> float:
    """Return ``c = Phi^{-1}(1 - alpha/2)`` for a two-sided test (Eq. (7))."""
    if not 0.0 < significance_level < 1.0:
        raise ValueError("significance_level must lie strictly between 0 and 1")
    return float(norm.ppf(1.0 - significance_level / 2.0))


def count_runs(symbols: Sequence[int]) -> int:
    """Count the number of runs (maximal blocks of identical symbols)."""
    if not symbols:
        return 0
    runs = 1
    previous = symbols[0]
    for symbol in symbols[1:]:
        if symbol != previous:
            runs += 1
            previous = symbol
    return runs


def runs_test(symbols: Sequence[int], significance_level: float = 0.20) -> RunsTestResult:
    """Run the ordinary runs test on a two-symbol sequence.

    Parameters
    ----------
    symbols:
        Ordered sequence of symbols; every element must be 0 or 1.
    significance_level:
        Probability of rejecting the randomness hypothesis when it is true
        (the paper uses 0.20).
    """
    if len(symbols) < 2:
        raise ValueError("runs test requires at least two symbols")
    for symbol in symbols:
        if symbol not in (0, 1):
            raise ValueError("symbols must be 0 or 1; dichotomise real values first")

    threshold = critical_value(significance_level)
    m = sum(1 for symbol in symbols if symbol == 0)
    n = len(symbols) - m
    total = m + n
    num_runs = count_runs(symbols)

    if m == 0 or n == 0:
        # A constant sequence carries no information about serial dependence;
        # accept but mark the result degenerate.
        return RunsTestResult(
            num_runs=num_runs,
            num_first=m,
            num_second=n,
            z_statistic=0.0,
            critical_value=threshold,
            significance_level=significance_level,
            accepted=True,
            p_value=1.0,
            degenerate=True,
        )

    mean_runs = 1.0 + 2.0 * m * n / total
    variance = (2.0 * m * n * (2.0 * m * n - total)) / (total * total * (total - 1.0))
    if variance <= 0.0:
        # Only possible for tiny, extremely unbalanced sequences.
        return RunsTestResult(
            num_runs=num_runs,
            num_first=m,
            num_second=n,
            z_statistic=0.0,
            critical_value=threshold,
            significance_level=significance_level,
            accepted=True,
            p_value=1.0,
            degenerate=True,
        )
    stdev = math.sqrt(variance)

    # Continuity correction of Eq. (4): shrink |U - mean| by 0.5.
    if num_runs < mean_runs:
        z = (num_runs + 0.5 - mean_runs) / stdev
    elif num_runs > mean_runs:
        z = (num_runs - 0.5 - mean_runs) / stdev
    else:
        z = 0.0

    p_value = float(2.0 * (1.0 - norm.cdf(abs(z))))
    return RunsTestResult(
        num_runs=num_runs,
        num_first=m,
        num_second=n,
        z_statistic=z,
        critical_value=threshold,
        significance_level=significance_level,
        accepted=abs(z) <= threshold,
        p_value=p_value,
        degenerate=False,
    )
