"""Descriptive statistics of a growing power sample."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a sample of per-cycle power (or energy) values."""

    count: int
    mean: float
    standard_deviation: float
    minimum: float
    maximum: float
    median: float

    @property
    def standard_error(self) -> float:
        """Standard error of the sample mean (0 for empty/singleton samples)."""
        if self.count < 2:
            return 0.0
        return self.standard_deviation / math.sqrt(self.count)

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation divided by the mean (0 when the mean is 0)."""
        if self.mean == 0.0:
            return 0.0
        return self.standard_deviation / abs(self.mean)


def summarize(values: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` for *values* (must be non-empty)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SampleSummary(
        count=int(data.size),
        mean=float(data.mean()),
        standard_deviation=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        median=float(np.median(data)),
    )
