"""Parametric stopping criterion based on the central-limit theorem.

This is the criterion of the classic Monte-Carlo power estimators (Burch,
Najm et al.; the paper's references [1] and [11]): treat the sample mean as
normally distributed, build a Student-t confidence interval, and stop when
its half-width relative to the mean drops below the error specification.  It
is efficient but its coverage depends on near-normality of the sample mean;
the paper prefers a distribution-independent rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.stats import t as student_t

from repro.stats.stopping.base import StoppingCriterion


class CltStoppingCriterion(StoppingCriterion):
    """Student-t confidence interval on the mean (parametric)."""

    name = "clt"

    def interval(self, sample: Sequence[float]) -> tuple[float, float, float]:
        data = np.asarray(list(sample), dtype=float)
        mean = float(data.mean())
        if data.size < 2:
            return mean, mean, mean
        std = float(data.std(ddof=1))
        if std == 0.0:
            return mean, mean, mean
        quantile = float(student_t.ppf(1.0 - (1.0 - self.confidence) / 2.0, df=data.size - 1))
        half_width = quantile * std / np.sqrt(data.size)
        return mean, mean - half_width, mean + half_width
