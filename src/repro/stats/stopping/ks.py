"""Nonparametric stopping criterion based on the Kolmogorov–Smirnov statistic.

The paper's reference [6] builds a stopping rule on the Kolmogorov–Smirnov
distance between the empirical CDF and the (unknown) true CDF.  This module
implements that idea through the Dvoretzky–Kiefer–Wolfowitz (DKW) inequality:
with probability at least ``1 - delta`` the true CDF lies within

    epsilon_n = sqrt( ln(2 / delta) / (2 n) )

of the empirical CDF everywhere.  For a random variable supported on the
observed range ``[a, b]`` the identity ``E[X] = b - integral_a^b F(x) dx``
then yields simultaneous upper and lower bounds on the mean.  The criterion
stops when the resulting interval is relatively tight.

Using the observed minimum and maximum as the support is the standard
practical compromise (per-cycle power is bounded above by switching the whole
circuit); it makes the rule slightly optimistic in the extreme tails but it
remains far more conservative than the CLT rule, which is exactly the
robustness/efficiency ordering the paper describes.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.stats.stopping.base import StoppingCriterion


class KolmogorovSmirnovStoppingCriterion(StoppingCriterion):
    """DKW-band bounds on the mean of a bounded sample (nonparametric)."""

    name = "kolmogorov-smirnov"

    def dkw_epsilon(self, sample_size: int) -> float:
        """Half-width of the DKW band for the configured confidence."""
        if sample_size < 1:
            return float("inf")
        delta = 1.0 - self.confidence
        return math.sqrt(math.log(2.0 / delta) / (2.0 * sample_size))

    def interval(self, sample: Sequence[float]) -> tuple[float, float, float]:
        data = np.sort(np.asarray(list(sample), dtype=float))
        estimate = float(data.mean())
        size = data.size
        if size < 2:
            return estimate, estimate, estimate
        epsilon = self.dkw_epsilon(size)
        if epsilon >= 1.0:
            return estimate, float(data.min()), float(data.max())

        minimum = float(data[0])
        maximum = float(data[-1])
        # E[X] = b - integral_a^b F(x) dx, evaluated on the empirical CDF steps.
        # The empirical CDF equals i/n on [x_(i), x_(i+1)).
        widths = np.diff(data)
        steps = np.arange(1, size, dtype=float) / size  # F-hat on each interval
        upper_cdf = np.clip(steps + epsilon, 0.0, 1.0)
        lower_cdf = np.clip(steps - epsilon, 0.0, 1.0)
        mean_lower = maximum - float(np.dot(upper_cdf, widths))
        mean_upper = maximum - float(np.dot(lower_cdf, widths))
        mean_lower = max(mean_lower, minimum)
        mean_upper = min(mean_upper, maximum)
        return estimate, mean_lower, mean_upper
