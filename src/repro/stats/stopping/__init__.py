"""Stopping criteria for sequential mean estimation (Section IV of the paper).

A stopping criterion watches the growing random power sample and decides when
enough samples have been collected to report the mean with the requested
accuracy (maximum relative error) and confidence.  Three criteria are
provided:

* :class:`OrderStatisticStoppingCriterion` — the distribution-independent
  criterion the paper adopts (its reference [7]); reconstructed here as a
  distribution-free order-statistics confidence interval on batch means.
* :class:`CltStoppingCriterion` — the parametric criterion based on the
  central-limit theorem used by earlier Monte-Carlo power estimators
  (Burch et al. / Najm et al.).
* :class:`KolmogorovSmirnovStoppingCriterion` — a nonparametric criterion
  built on the Dvoretzky–Kiefer–Wolfowitz band around the empirical CDF
  (the paper's reference [6]).

All criteria share the interface of :class:`StoppingCriterion`.
:class:`GroupedStoppingCriterion` wraps any of them so they evaluate sweep
means instead of raw samples — required for validity when a lane-coupled
variance-reduction stimulus (``repro.variance``) correlates the draws within
each sweep.
"""

from repro.api.registry import (
    STOPPING_CRITERION_REGISTRY,
    register_stopping_criterion,
    stopping_criterion_names,
)
from repro.stats.stopping.base import StoppingCriterion, StoppingDecision
from repro.stats.stopping.clt import CltStoppingCriterion
from repro.stats.stopping.grouped import GroupedStoppingCriterion
from repro.stats.stopping.ks import KolmogorovSmirnovStoppingCriterion
from repro.stats.stopping.order_stat import OrderStatisticStoppingCriterion

__all__ = [
    "StoppingCriterion",
    "StoppingDecision",
    "CltStoppingCriterion",
    "GroupedStoppingCriterion",
    "KolmogorovSmirnovStoppingCriterion",
    "OrderStatisticStoppingCriterion",
    "make_stopping_criterion",
]

register_stopping_criterion("order-statistic", OrderStatisticStoppingCriterion,
                            aliases=("order_stat",))
register_stopping_criterion("clt", CltStoppingCriterion)
register_stopping_criterion("ks", KolmogorovSmirnovStoppingCriterion,
                            aliases=("kolmogorov-smirnov",))


def make_stopping_criterion(
    name: str,
    max_relative_error: float = 0.05,
    confidence: float = 0.99,
    **kwargs,
) -> StoppingCriterion:
    """Build a stopping criterion by registered name.

    Built-in names: ``"order-statistic"`` (the paper's choice, default in
    DIPE), ``"clt"``, and ``"ks"``; additional criteria can be registered via
    :func:`repro.api.register_stopping_criterion`.
    """
    try:
        factory = STOPPING_CRITERION_REGISTRY.get(name)
    except KeyError:
        raise ValueError(
            f"unknown stopping criterion {name!r}; "
            f"choose from {sorted(stopping_criterion_names())}"
        ) from None
    return factory(max_relative_error=max_relative_error, confidence=confidence, **kwargs)
