"""Common interface for sequential stopping criteria."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class StoppingDecision:
    """Verdict of a stopping criterion on the sample collected so far.

    Attributes
    ----------
    should_stop:
        ``True`` when the accuracy specification is met and sampling may end.
    sample_size:
        Number of samples examined.
    estimate:
        Current point estimate of the mean.
    lower / upper:
        Confidence-interval bounds on the mean at the requested confidence
        (equal to the estimate when the sample is too small to say anything).
    relative_half_width:
        Half-width of the interval divided by the estimate — the quantity
        compared against the user's maximum relative error.
    """

    should_stop: bool
    sample_size: int
    estimate: float
    lower: float
    upper: float
    relative_half_width: float


class StoppingCriterion(ABC):
    """Decides when a growing i.i.d. power sample meets the accuracy spec.

    Parameters
    ----------
    max_relative_error:
        Maximum allowed half-width of the confidence interval relative to the
        estimate (the paper uses 0.05).
    confidence:
        Required coverage probability of the interval (the paper uses 0.99).
    min_samples:
        Never stop before this many samples; protects the asymptotics all
        three criteria rely on.
    """

    #: Name used by reports and the factory function.
    name: str = "abstract"

    def __init__(
        self,
        max_relative_error: float = 0.05,
        confidence: float = 0.99,
        min_samples: int = 64,
    ):
        if not 0.0 < max_relative_error < 1.0:
            raise ValueError("max_relative_error must lie strictly between 0 and 1")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must lie strictly between 0 and 1")
        if min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        self.max_relative_error = max_relative_error
        self.confidence = confidence
        self.min_samples = min_samples

    @abstractmethod
    def interval(self, sample: Sequence[float]) -> tuple[float, float, float]:
        """Return ``(estimate, lower, upper)`` for the mean given *sample*."""

    def evaluate(self, sample: Sequence[float]) -> StoppingDecision:
        """Evaluate the criterion on *sample* and return a :class:`StoppingDecision`."""
        size = len(sample)
        if size == 0:
            return StoppingDecision(
                should_stop=False,
                sample_size=0,
                estimate=0.0,
                lower=0.0,
                upper=0.0,
                relative_half_width=float("inf"),
            )
        estimate, lower, upper = self.interval(sample)
        # Normalise to Python scalars: criteria computing with numpy would
        # otherwise leak numpy scalar types into results and JSON manifests.
        estimate, lower, upper = float(estimate), float(lower), float(upper)
        if estimate <= 0.0:
            # Power is non-negative; a zero estimate means nothing has switched
            # yet and the sample carries no usable accuracy information.
            relative = float("inf") if upper > lower else 0.0
        else:
            relative = (upper - lower) / 2.0 / estimate
        should_stop = bool(size >= self.min_samples and relative <= self.max_relative_error)
        return StoppingDecision(
            should_stop=should_stop,
            sample_size=size,
            estimate=estimate,
            lower=lower,
            upper=upper,
            relative_half_width=float(relative),
        )

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return (
            f"{self.name} (max error {self.max_relative_error:.1%}, "
            f"confidence {self.confidence:.0%})"
        )
