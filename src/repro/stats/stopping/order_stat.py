"""Distribution-independent stopping criterion based on order statistics.

This is the criterion the paper adopts (its reference [7], "Statistical
estimation of average power dissipation in CMOS VLSI circuits using
nonparametric techniques").  The original derivation is not reproduced in the
DAC paper, so this module implements a faithful reconstruction with the same
two properties the paper relies on:

* it is **distribution-independent** — no normality (or any other shape)
  assumption on the per-cycle power distribution is needed; and
* it offers a **tradeoff between robustness and efficiency** that sits
  between the parametric CLT rule and the very conservative
  Kolmogorov–Smirnov rule.

Construction: the sample is grouped into ``num_batches`` equal batches and
the batch means are computed.  For i.i.d. samples the batch means are i.i.d.
and (nearly) symmetric about the true mean, so a distribution-free confidence
interval for their median — given by binomial order statistics,
``P( X_(r) <= median <= X_(k-r+1) ) = 1 - 2 * BinomCDF(r-1; k, 1/2)`` —
is also a confidence interval for the mean.  The criterion stops when that
interval's half-width relative to the overall sample mean is below the error
specification.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.stats import binom

from repro.stats.stopping.base import StoppingCriterion


class OrderStatisticStoppingCriterion(StoppingCriterion):
    """Distribution-free order-statistics confidence interval on batch means."""

    name = "order-statistic"

    def __init__(
        self,
        max_relative_error: float = 0.05,
        confidence: float = 0.99,
        min_samples: int = 64,
        num_batches: int = 16,
    ):
        super().__init__(
            max_relative_error=max_relative_error,
            confidence=confidence,
            min_samples=min_samples,
        )
        if num_batches < 8:
            raise ValueError(
                "num_batches must be at least 8 so the order-statistic interval can "
                "reach useful confidence levels"
            )
        self.num_batches = num_batches

    # ------------------------------------------------------------------ parts
    def batch_means(self, sample: Sequence[float]) -> np.ndarray:
        """Split *sample* into ``num_batches`` contiguous batches and average each.

        Trailing samples that do not fill a complete batch are folded into
        the last batch so no observation is discarded.
        """
        data = np.asarray(list(sample), dtype=float)
        if data.size < self.num_batches:
            return data
        batch_size = data.size // self.num_batches
        means = []
        for index in range(self.num_batches):
            start = index * batch_size
            end = (index + 1) * batch_size if index < self.num_batches - 1 else data.size
            means.append(float(data[start:end].mean()))
        return np.asarray(means)

    def order_statistic_rank(self, num_batches: int) -> int | None:
        """Largest rank ``r`` whose symmetric interval reaches the confidence level.

        Returns ``None`` when even the full range (r = 1) does not cover the
        requested confidence, i.e. the sample is still too small.
        """
        best_rank = None
        for rank in range(1, num_batches // 2 + 1):
            coverage = 1.0 - 2.0 * float(binom.cdf(rank - 1, num_batches, 0.5))
            if coverage >= self.confidence:
                best_rank = rank
            else:
                break
        return best_rank

    # ------------------------------------------------------------------ main
    def interval(self, sample: Sequence[float]) -> tuple[float, float, float]:
        data = np.asarray(list(sample), dtype=float)
        estimate = float(data.mean())
        means = np.sort(self.batch_means(data))
        rank = self.order_statistic_rank(means.size)
        if rank is None:
            # Not enough batches yet for the requested confidence: return an
            # interval spanning the observed batch means, which can never
            # satisfy a tight error specification and therefore keeps sampling.
            if means.size == 0:
                return estimate, estimate, estimate
            return estimate, float(means.min()), float(means.max())
        lower = float(means[rank - 1])
        upper = float(means[means.size - rank])
        return estimate, lower, upper
