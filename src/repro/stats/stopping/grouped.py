"""Sweep-grouped wrapper making stopping criteria valid for coupled draws.

Every base stopping criterion assumes an i.i.d. sample.  When a
lane-coupled variance-reduction stimulus (``repro.variance.stimuli``) drives
the multi-chain sampler, samples within one sweep — one block of
``num_chains`` consecutive draws — are deliberately correlated, and feeding
them to an i.i.d. criterion would produce an invalid (usually
anti-conservative for positive, over-conservative for negative correlation)
confidence interval.  Sweep *means*, however, are honest i.i.d. replicates:
each sweep is produced by fresh independent randomness on top of the
coupling structure.

:class:`GroupedStoppingCriterion` therefore collapses the flat sample into
consecutive group means of width ``group_width`` and delegates to the
wrapped criterion on those means.  Because the coupling lowers the group
mean variance *below* the i.i.d. level, the grouped interval closes with
fewer raw samples than the flat interval would on independent draws — the
whole point of the variance subsystem.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.stats.stopping.base import StoppingCriterion, StoppingDecision

__all__ = ["GroupedStoppingCriterion"]


class GroupedStoppingCriterion(StoppingCriterion):
    """Evaluate a wrapped criterion on consecutive group means.

    Parameters
    ----------
    inner:
        The criterion applied to the group means (its ``min_samples`` counts
        *groups*, so callers typically scale the raw floor down by
        ``group_width``).
    group_width:
        Samples per group, in draw order; must match the sampler's sweep
        width.  A trailing partial group is ignored until it completes.

    The decision's ``sample_size`` reports the *raw* sample count so
    progress reporting and ``max_samples`` budgeting stay in raw-sample
    units; estimate, bounds and relative half-width come from the grouped
    interval.
    """

    def __init__(self, inner: StoppingCriterion, group_width: int):
        if group_width < 1:
            raise ValueError("group_width must be at least 1")
        super().__init__(
            max_relative_error=inner.max_relative_error,
            confidence=inner.confidence,
            min_samples=inner.min_samples,
        )
        self.inner = inner
        self.group_width = int(group_width)
        self.name = f"grouped-{inner.name}"

    def _group_means(self, sample: Sequence[float]) -> list[float]:
        width = self.group_width
        groups = len(sample) // width
        return [
            sum(float(v) for v in sample[g * width : (g + 1) * width]) / width
            for g in range(groups)
        ]

    def interval(self, sample: Sequence[float]) -> tuple[float, float, float]:
        return self.inner.interval(self._group_means(sample))

    def evaluate(self, sample: Sequence[float]) -> StoppingDecision:
        decision = self.inner.evaluate(self._group_means(sample))
        return dataclasses.replace(decision, sample_size=len(sample))

    def describe(self) -> str:
        return f"{self.inner.describe()} on sweep means of {self.group_width}"
