"""Gate-level netlist data model and ISCAS89 ``.bench`` format support.

The netlist package provides the structural substrate everything else builds
on: a :class:`~repro.netlist.netlist.Netlist` of logic gates and D flip-flops,
a parser/writer for the ISCAS89 ``.bench`` interchange format, structural
validation, and levelization (topological ordering of the combinational
block) used by the simulators.
"""

from repro.netlist.bench import BenchParseError, parse_bench, parse_bench_file, write_bench
from repro.netlist.cell_library import (
    GATE_ARITY,
    GateType,
    evaluate_gate,
    evaluate_gate_bitparallel,
)
from repro.netlist.levelize import levelize, logic_depth
from repro.netlist.netlist import Gate, Latch, Netlist, NetlistError
from repro.netlist.validate import ValidationIssue, validate_netlist

__all__ = [
    "GateType",
    "GATE_ARITY",
    "evaluate_gate",
    "evaluate_gate_bitparallel",
    "Gate",
    "Latch",
    "Netlist",
    "NetlistError",
    "BenchParseError",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "levelize",
    "logic_depth",
    "ValidationIssue",
    "validate_netlist",
]
