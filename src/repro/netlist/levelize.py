"""Levelization: topological ordering of the combinational block.

Both simulators evaluate the combinational gates of a sequential circuit in a
single forward pass per clock cycle.  That requires a topological order in
which every gate appears after all of its combinational fan-in.  Primary
inputs and latch outputs (the present-state bits) are the sources of the
combinational graph; latch data pins and primary outputs are the sinks.

A combinational cycle (a feedback path that does not pass through a latch)
makes levelization impossible and is reported as an error.
"""

from __future__ import annotations

from collections import deque

from repro.netlist.netlist import Gate, Netlist, NetlistError


def levelize(netlist: Netlist) -> list[Gate]:
    """Return the gates of *netlist* in topological (evaluation) order.

    Raises
    ------
    NetlistError
        If the combinational block contains a cycle.
    """
    gate_by_output = {gate.output: gate for gate in netlist.gates}
    sources = set(netlist.primary_inputs)
    sources.update(latch.output for latch in netlist.latches)

    # in-degree of each gate counts only fan-in driven by other gates
    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = {output: [] for output in gate_by_output}
    for gate in netlist.gates:
        count = 0
        for src in gate.inputs:
            if src in gate_by_output:
                count += 1
                dependents[src].append(gate.output)
        indegree[gate.output] = count

    ready = deque(output for output, count in indegree.items() if count == 0)
    order: list[Gate] = []
    while ready:
        output = ready.popleft()
        order.append(gate_by_output[output])
        for successor in dependents[output]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)

    if len(order) != len(netlist.gates):
        stuck = sorted(output for output, count in indegree.items() if count > 0)
        raise NetlistError(
            "combinational cycle detected; gates involved (or downstream of the "
            f"cycle): {', '.join(stuck[:10])}"
        )
    return order


def gate_levels(netlist: Netlist) -> dict[str, int]:
    """Return the logic level of every gate output.

    Primary inputs and latch outputs are level 0; each gate is one level above
    the deepest of its fan-in signals.
    """
    levels: dict[str, int] = {pi: 0 for pi in netlist.primary_inputs}
    for latch in netlist.latches:
        levels[latch.output] = 0
    for gate in levelize(netlist):
        fanin_levels = [levels.get(src, 0) for src in gate.inputs]
        levels[gate.output] = (max(fanin_levels) if fanin_levels else 0) + 1
    return levels


def logic_depth(netlist: Netlist) -> int:
    """Return the depth (maximum logic level) of the combinational block."""
    levels = gate_levels(netlist)
    gate_outputs = [gate.output for gate in netlist.gates]
    if not gate_outputs:
        return 0
    return max(levels[output] for output in gate_outputs)
