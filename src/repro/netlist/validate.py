"""Structural validation of netlists.

The checks mirror what a gate-level simulator needs to guarantee before it
can run: every read net must have a driver, no net may have two drivers, the
combinational block must be acyclic, and declared primary outputs must exist.
Problems are returned as :class:`ValidationIssue` records so callers can
decide which of them are fatal for their use case (the simulators treat
``"error"`` severity as fatal, ``"warning"`` as informational).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist, NetlistError


@dataclass(frozen=True)
class ValidationIssue:
    """A single structural problem found in a netlist."""

    severity: str  # "error" or "warning"
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


def validate_netlist(netlist: Netlist) -> list[ValidationIssue]:
    """Run all structural checks and return the list of issues (possibly empty)."""
    issues: list[ValidationIssue] = []

    # Multiple drivers are detected while building the driver map.
    try:
        drivers = netlist.driver_map()
    except NetlistError as exc:
        return [ValidationIssue("error", "multiple-drivers", str(exc))]

    for net in netlist.undriven_nets():
        issues.append(
            ValidationIssue("error", "undriven-net", f"net {net!r} is read but never driven")
        )

    for po in netlist.primary_outputs:
        if po not in drivers:
            issues.append(
                ValidationIssue("error", "undriven-output", f"primary output {po!r} has no driver")
            )

    fanout = netlist.fanout_map()
    for net, sinks in fanout.items():
        if not sinks and net not in netlist.primary_outputs:
            issues.append(
                ValidationIssue(
                    "warning", "dangling-net", f"net {net!r} drives nothing and is not an output"
                )
            )

    try:
        levelize(netlist)
    except NetlistError as exc:
        issues.append(ValidationIssue("error", "combinational-cycle", str(exc)))

    if not netlist.latches:
        issues.append(
            ValidationIssue(
                "warning",
                "combinational-only",
                "circuit has no latches; sequential power estimation degenerates to the "
                "combinational case",
            )
        )
    if not netlist.primary_inputs:
        issues.append(ValidationIssue("warning", "no-inputs", "circuit has no primary inputs"))
    return issues


def assert_valid(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if *netlist* has any error-severity issue."""
    errors = [issue for issue in validate_netlist(netlist) if issue.severity == "error"]
    if errors:
        details = "; ".join(str(issue) for issue in errors)
        raise NetlistError(f"netlist {netlist.name!r} failed validation: {details}")
