"""Netlist data model: gates, D flip-flops and the sequential circuit container.

A :class:`Netlist` is the structural view of a sequential circuit: a set of
primary inputs, primary outputs, combinational :class:`Gate` instances and
:class:`Latch` (D flip-flop) instances, all connected by named nets.  Signal
names are plain strings — exactly the identifiers appearing in the ``.bench``
source — and every driver (primary input, gate output or latch output) must
be unique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.netlist.cell_library import GateType, check_arity


class NetlistError(Exception):
    """Raised for structural errors while building or querying a netlist."""


@dataclass(frozen=True)
class Gate:
    """A combinational cell driving net *output* from *inputs*."""

    output: str
    gate_type: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        check_arity(self.gate_type, len(self.inputs))
        if self.output in self.inputs and self.gate_type is not GateType.BUFF:
            # A true combinational self-loop can never stabilise; BUFF
            # self-loops are rejected too but give a clearer message here.
            raise NetlistError(f"gate {self.output!r} drives one of its own inputs")


@dataclass(frozen=True)
class Latch:
    """A D flip-flop: on every clock edge, net *output* (Q) captures net *data* (D)."""

    output: str
    data: str
    init_value: int = 0

    def __post_init__(self) -> None:
        if self.init_value not in (0, 1):
            raise NetlistError(f"latch {self.output!r} init value must be 0 or 1")


@dataclass
class Netlist:
    """A gate-level sequential circuit.

    Attributes
    ----------
    name:
        Circuit name (e.g. ``"s27"``).
    primary_inputs / primary_outputs:
        Ordered signal name lists.
    gates:
        Combinational cells, in declaration order.
    latches:
        D flip-flops, in declaration order.
    """

    name: str = "circuit"
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    latches: list[Latch] = field(default_factory=list)

    # ------------------------------------------------------------------ build
    def add_input(self, name: str) -> None:
        """Declare a primary input net."""
        if name in self.primary_inputs:
            raise NetlistError(f"duplicate primary input {name!r}")
        self.primary_inputs.append(name)

    def add_output(self, name: str) -> None:
        """Declare a primary output net (its driver may be added later)."""
        if name in self.primary_outputs:
            raise NetlistError(f"duplicate primary output {name!r}")
        self.primary_outputs.append(name)

    def add_gate(self, output: str, gate_type: GateType, inputs: Iterable[str]) -> Gate:
        """Add a combinational gate and return it."""
        gate = Gate(output=output, gate_type=gate_type, inputs=tuple(inputs))
        self.gates.append(gate)
        return gate

    def add_latch(self, output: str, data: str, init_value: int = 0) -> Latch:
        """Add a D flip-flop and return it."""
        latch = Latch(output=output, data=data, init_value=init_value)
        self.latches.append(latch)
        return latch

    # ------------------------------------------------------------------ query
    @property
    def num_gates(self) -> int:
        """Number of combinational gates."""
        return len(self.gates)

    @property
    def num_latches(self) -> int:
        """Number of D flip-flops."""
        return len(self.latches)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.primary_inputs)

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self.primary_outputs)

    def driver_map(self) -> dict[str, Gate | Latch | str]:
        """Map each driven net to its driver.

        Primary inputs map to the string ``"input"``; gate outputs map to the
        :class:`Gate`; latch outputs map to the :class:`Latch`.  Raises
        :class:`NetlistError` on multiply-driven nets.
        """
        drivers: dict[str, Gate | Latch | str] = {}
        for pi in self.primary_inputs:
            drivers[pi] = "input"
        for gate in self.gates:
            if gate.output in drivers:
                raise NetlistError(f"net {gate.output!r} has multiple drivers")
            drivers[gate.output] = gate
        for latch in self.latches:
            if latch.output in drivers:
                raise NetlistError(f"net {latch.output!r} has multiple drivers")
            drivers[latch.output] = latch
        return drivers

    def all_nets(self) -> list[str]:
        """Return every distinct net name, in a deterministic order."""
        seen: dict[str, None] = {}
        for pi in self.primary_inputs:
            seen.setdefault(pi, None)
        for latch in self.latches:
            seen.setdefault(latch.output, None)
            seen.setdefault(latch.data, None)
        for gate in self.gates:
            seen.setdefault(gate.output, None)
            for name in gate.inputs:
                seen.setdefault(name, None)
        for po in self.primary_outputs:
            seen.setdefault(po, None)
        return list(seen)

    def fanout_map(self) -> dict[str, list[str]]:
        """Map each net to the list of sinks that read it.

        A sink is the output net of a gate that uses the net as an input, the
        output net of a latch whose D pin is the net, or the pseudo-sink
        ``"PO:<name>"`` for primary outputs.
        """
        fanout: dict[str, list[str]] = {net: [] for net in self.all_nets()}
        for gate in self.gates:
            for src in gate.inputs:
                fanout.setdefault(src, []).append(gate.output)
        for latch in self.latches:
            fanout.setdefault(latch.data, []).append(latch.output)
        for po in self.primary_outputs:
            fanout.setdefault(po, []).append(f"PO:{po}")
        return fanout

    def undriven_nets(self) -> list[str]:
        """Return nets that are read somewhere but have no driver."""
        drivers = self.driver_map()
        return [net for net in self.all_nets() if net not in drivers]

    def state_space_size(self) -> int:
        """Number of distinct latch-state vectors (``2 ** num_latches``)."""
        return 1 << self.num_latches

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist(name={self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, gates={self.num_gates}, latches={self.num_latches})"
        )
