"""Primitive gate library used by the ISCAS89-style netlists.

The library covers the cell types found in the ISCAS89 benchmark set (the
circuits evaluated in the paper): AND, NAND, OR, NOR, XOR, XNOR, NOT and
BUFF, plus constant drivers which occasionally appear in translated
netlists.  D flip-flops are modelled separately (:class:`repro.netlist.netlist.Latch`)
because they are sequential elements, not combinational cells.

Two evaluation entry points are provided:

* :func:`evaluate_gate` — scalar, ``0``/``1`` values; used by the
  event-driven simulator and by the FSM enumeration code.
* :func:`evaluate_gate_bitparallel` — bit-parallel evaluation on arbitrary
  width Python integers, where bit ``k`` of every operand belongs to an
  independent simulation lane.  This is what makes the pure-Python reference
  power simulation fast enough for the experiments.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class GateType(str, Enum):
    """Combinational cell types supported by the netlist model."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUFF = "BUFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Required input count per gate type.  ``None`` means "one or more".
GATE_ARITY: dict[GateType, int | None] = {
    GateType.AND: None,
    GateType.NAND: None,
    GateType.OR: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: 1,
    GateType.BUFF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}

#: Gate types whose output is the complement of the corresponding base type.
INVERTING_TYPES = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT, GateType.CONST0}

_BENCH_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUFF,
    "BUFF": GateType.BUFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def gate_type_from_name(name: str) -> GateType:
    """Map a ``.bench`` function name (case-insensitive) to a :class:`GateType`."""
    key = name.strip().upper()
    if key not in _BENCH_ALIASES:
        raise ValueError(f"unknown gate function {name!r}")
    return _BENCH_ALIASES[key]


def check_arity(gate_type: GateType, num_inputs: int) -> None:
    """Raise :class:`ValueError` if *num_inputs* is illegal for *gate_type*."""
    required = GATE_ARITY[gate_type]
    if required is None:
        if num_inputs < 1:
            raise ValueError(f"{gate_type} gate requires at least one input")
    elif num_inputs != required:
        raise ValueError(f"{gate_type} gate requires exactly {required} input(s), got {num_inputs}")


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate on scalar 0/1 inputs and return 0 or 1."""
    return evaluate_gate_bitparallel(gate_type, inputs, mask=1)


def evaluate_gate_bitparallel(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate a gate on bit-parallel integer operands.

    Parameters
    ----------
    gate_type:
        The cell function.
    inputs:
        Input operands; each is an integer whose bit *k* carries the value of
        the input in simulation lane *k*.
    mask:
        ``(1 << width) - 1`` — the all-ones word for the configured number of
        lanes, used to implement logical NOT without producing negative
        Python integers.
    """
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    if not inputs:
        raise ValueError(f"{gate_type} gate evaluated with no inputs")

    if gate_type in (GateType.AND, GateType.NAND):
        value = inputs[0]
        for operand in inputs[1:]:
            value &= operand
        return (mask ^ value) if gate_type is GateType.NAND else value

    if gate_type in (GateType.OR, GateType.NOR):
        value = inputs[0]
        for operand in inputs[1:]:
            value |= operand
        return (mask ^ value) if gate_type is GateType.NOR else value

    if gate_type in (GateType.XOR, GateType.XNOR):
        value = inputs[0]
        for operand in inputs[1:]:
            value ^= operand
        return (mask ^ value) if gate_type is GateType.XNOR else value

    if gate_type is GateType.NOT:
        return mask ^ inputs[0]

    if gate_type is GateType.BUFF:
        return inputs[0]

    raise ValueError(f"unhandled gate type {gate_type!r}")  # pragma: no cover
