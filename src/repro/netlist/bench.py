"""Parser and writer for the ISCAS89 ``.bench`` netlist format.

The benchmark circuits evaluated by the paper are distributed in this format.
The grammar is small::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G11 = NAND(G0, G10)

Blank lines and ``#`` comments are ignored.  Gate function names are
case-insensitive and ``INV``/``BUF`` aliases are accepted.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.netlist.cell_library import gate_type_from_name
from repro.netlist.netlist import Netlist

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s,]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(r"^([^()\s=]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)$")


class BenchParseError(Exception):
    """Raised when a ``.bench`` source cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


def _strip(line: str) -> str:
    comment = line.find("#")
    if comment >= 0:
        line = line[:comment]
    return line.strip()


def parse_bench(text: str, name: str = "circuit") -> Netlist:
    """Parse ``.bench`` source *text* into a :class:`Netlist`."""
    netlist = Netlist(name=name)
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip(raw_line)
        if not line:
            continue

        io_match = _IO_RE.match(line)
        if io_match:
            keyword, signal = io_match.group(1).upper(), io_match.group(2)
            if keyword == "INPUT":
                netlist.add_input(signal)
            else:
                netlist.add_output(signal)
            continue

        assign_match = _ASSIGN_RE.match(line)
        if assign_match is None:
            raise BenchParseError(f"cannot parse {raw_line.strip()!r}", line_number)

        output, function, operand_text = assign_match.groups()
        operands = [op.strip() for op in operand_text.split(",") if op.strip()]
        function_key = function.upper()

        if function_key == "DFF":
            if len(operands) != 1:
                raise BenchParseError(
                    f"DFF {output!r} must have exactly one data input", line_number
                )
            netlist.add_latch(output=output, data=operands[0])
            continue

        try:
            gate_type = gate_type_from_name(function_key)
            netlist.add_gate(output=output, gate_type=gate_type, inputs=operands)
        except ValueError as exc:
            raise BenchParseError(str(exc), line_number) from exc

    return netlist


def parse_bench_file(path: str | Path, name: str | None = None) -> Netlist:
    """Parse a ``.bench`` file from disk; the stem becomes the circuit name."""
    path = Path(path)
    text = path.read_text()
    return parse_bench(text, name=name or path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialise *netlist* back into ``.bench`` source.

    The output round-trips through :func:`parse_bench` to an equivalent
    netlist (same inputs, outputs, gates and latches, in the same order).
    """
    lines: list[str] = [f"# {netlist.name}"]
    lines.append(
        f"# {netlist.num_inputs} inputs, {netlist.num_outputs} outputs, "
        f"{netlist.num_latches} D flip-flops, {netlist.num_gates} gates"
    )
    for pi in netlist.primary_inputs:
        lines.append(f"INPUT({pi})")
    for po in netlist.primary_outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for latch in netlist.latches:
        lines.append(f"{latch.output} = DFF({latch.data})")
    for gate in netlist.gates:
        operand_text = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value}({operand_text})")
    lines.append("")
    return "\n".join(lines)


def write_bench_file(netlist: Netlist, path: str | Path) -> Path:
    """Write *netlist* to *path* in ``.bench`` format and return the path."""
    path = Path(path)
    path.write_text(write_bench(netlist))
    return path


def parse_bench_lines(lines: Iterable[str], name: str = "circuit") -> Netlist:
    """Parse an iterable of source lines (convenience wrapper)."""
    return parse_bench("\n".join(lines), name=name)
