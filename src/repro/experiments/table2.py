"""Table 2 of the paper: large-number (repeated-run) simulation summary.

The paper repeats the whole estimation 1,000 times per circuit and reports
the minimum, maximum and average independence interval, the average sample
size, the average percentage deviation from the reference (Eq. (8)) and the
fraction of runs that violated the accuracy specification.  The same summary
is produced here with a configurable (smaller by default) number of repeated
runs — the statistics converge long before 1,000 runs for the purpose of
checking the *shape* of the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, build_circuit
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource, child_rngs, spawn_rng
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class Table2Row:
    """One circuit's row of Table 2."""

    circuit: str
    runs: int
    interval_min: int
    interval_max: int
    interval_avg: float
    sample_size_avg: float
    deviation_avg_pct: float
    violation_pct: float


@dataclass(frozen=True)
class Table2Result:
    """All rows of Table 2 plus the configuration they were produced with."""

    rows: tuple[Table2Row, ...]
    runs_per_circuit: int
    config: EstimationConfig


def run_table2(
    circuit_names: Sequence[str] | None = None,
    runs_per_circuit: int = 25,
    config: EstimationConfig | None = None,
    reference_cycles: int = 50_000,
    reference_lanes: int = 64,
    seed: RandomSource = 2025,
    input_probability: float = 0.5,
) -> Table2Result:
    """Regenerate Table 2 (repeated-run statistics of the DIPE estimator)."""
    if runs_per_circuit < 1:
        raise ValueError("runs_per_circuit must be at least 1")
    names = tuple(circuit_names) if circuit_names is not None else SMALL_CIRCUIT_NAMES
    config = config or EstimationConfig()
    master_rng = spawn_rng(seed)

    rows = []
    for name in names:
        circuit = build_circuit(name)
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, input_probability),
            total_cycles=reference_cycles,
            lanes=reference_lanes,
            power_model=config.power_model,
            capacitance_model=config.capacitance_model,
            rng=int(master_rng.integers(0, 2**62)),
            backend=config.simulation_backend,
        )

        intervals: list[int] = []
        sample_sizes: list[int] = []
        deviations: list[float] = []
        violations = 0
        for run_rng in child_rngs(int(master_rng.integers(0, 2**62)), runs_per_circuit):
            estimator = DipeEstimator(
                circuit,
                stimulus=BernoulliStimulus(circuit.num_inputs, input_probability),
                config=config,
                rng=run_rng,
            )
            estimate = estimator.estimate()
            deviation = estimate.relative_error_to(reference.average_power_w)
            intervals.append(estimate.independence_interval)
            sample_sizes.append(estimate.sample_size)
            deviations.append(deviation)
            if deviation > config.max_relative_error:
                violations += 1

        rows.append(
            Table2Row(
                circuit=name,
                runs=runs_per_circuit,
                interval_min=min(intervals),
                interval_max=max(intervals),
                interval_avg=sum(intervals) / len(intervals),
                sample_size_avg=sum(sample_sizes) / len(sample_sizes),
                deviation_avg_pct=100.0 * sum(deviations) / len(deviations),
                violation_pct=100.0 * violations / runs_per_circuit,
            )
        )
    return Table2Result(rows=tuple(rows), runs_per_circuit=runs_per_circuit, config=config)


def format_table2(result: Table2Result) -> str:
    """Render the result in the paper's Table 2 layout."""
    table = TextTable(
        headers=["Circuit", "II_min", "II_max", "II_avg", "S_avg", "D_avg (%)", "Err (%)"],
        precision=2,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.interval_min,
                row.interval_max,
                row.interval_avg,
                row.sample_size_avg,
                row.deviation_avg_pct,
                row.violation_pct,
            ]
        )
    return table.render()
