"""Table 2 of the paper: large-number (repeated-run) simulation summary.

The paper repeats the whole estimation 1,000 times per circuit and reports
the minimum, maximum and average independence interval, the average sample
size, the average percentage deviation from the reference (Eq. (8)) and the
fraction of runs that violated the accuracy specification.  The same summary
is produced here with a configurable (smaller by default) number of repeated
runs — the statistics converge long before 1,000 runs for the purpose of
checking the *shape* of the paper's results.

Like Table 1, the harness is a :class:`~repro.api.jobs.JobSpec` producer:
:func:`table2_jobs` emits ``circuits × runs`` serializable specs with
deterministic per-run seeds and :func:`run_table2` executes them through the
:class:`~repro.api.batch.BatchRunner` (``workers=N`` shards the repeated
runs across processes with bit-identical results) before reducing them to
the paper's summary statistics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Sequence

from repro.api.batch import BatchRunner
from repro.api.jobs import JobSpec, StimulusSpec
from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, build_circuit
from repro.core.config import EstimationConfig
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import child_seeds, spawn_rng
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class Table2Row:
    """One circuit's row of Table 2."""

    circuit: str
    runs: int
    interval_min: int
    interval_max: int
    interval_avg: float
    sample_size_avg: float
    deviation_avg_pct: float
    violation_pct: float


@dataclass(frozen=True)
class Table2Result:
    """All rows of Table 2 plus the configuration they were produced with."""

    rows: tuple[Table2Row, ...]
    runs_per_circuit: int
    config: EstimationConfig

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": [asdict(row) for row in self.rows],
            "runs_per_circuit": self.runs_per_circuit,
            "config": self.config.to_dict(),
        }


def _table2_seeds(
    seed, circuit_names: Sequence[str], runs_per_circuit: int
) -> list[tuple[int, list[int]]]:
    """Per-circuit ``(reference_seed, [run_seed, ...])`` derived from the master seed.

    Matches the historical serial harness draw for draw (reference seed, then
    one child-seed block per circuit), so existing master seeds keep
    producing the same table.
    """
    master_rng = spawn_rng(seed)
    return [
        (
            int(master_rng.integers(0, 2**62)),
            child_seeds(int(master_rng.integers(0, 2**62)), runs_per_circuit),
        )
        for _ in circuit_names
    ]


def _table2_specs(
    names: Sequence[str],
    config: EstimationConfig,
    seeds: Sequence[tuple[int, list[int]]],
    input_probability: float,
) -> tuple[JobSpec, ...]:
    return tuple(
        JobSpec(
            circuit=name,
            estimator="dipe",
            stimulus=StimulusSpec.bernoulli(input_probability),
            config=config,
            seed=run_seed,
            label=f"table2:{name}:run{index}",
        )
        for name, (_, run_seeds) in zip(names, seeds)
        for index, run_seed in enumerate(run_seeds)
    )


def table2_jobs(
    circuit_names: Sequence[str] | None = None,
    runs_per_circuit: int = 25,
    config: EstimationConfig | None = None,
    seed=2025,
    input_probability: float = 0.5,
) -> tuple[JobSpec, ...]:
    """Emit the serializable DIPE JobSpecs behind Table 2 (circuits × runs)."""
    if runs_per_circuit < 1:
        raise ValueError("runs_per_circuit must be at least 1")
    names = tuple(circuit_names) if circuit_names is not None else SMALL_CIRCUIT_NAMES
    config = config or EstimationConfig()
    seeds = _table2_seeds(seed, names, runs_per_circuit)
    return _table2_specs(names, config, seeds, input_probability)


def run_table2(
    circuit_names: Sequence[str] | None = None,
    runs_per_circuit: int = 25,
    config: EstimationConfig | None = None,
    reference_cycles: int = 50_000,
    reference_lanes: int = 64,
    seed=2025,
    input_probability: float = 0.5,
    workers: int = 1,
) -> Table2Result:
    """Regenerate Table 2 (repeated-run statistics of the DIPE estimator)."""
    if runs_per_circuit < 1:
        raise ValueError("runs_per_circuit must be at least 1")
    names = tuple(circuit_names) if circuit_names is not None else SMALL_CIRCUIT_NAMES
    config = config or EstimationConfig()
    seeds = _table2_seeds(seed, names, runs_per_circuit)
    specs = _table2_specs(names, config, seeds, input_probability)
    batch = BatchRunner(workers=workers).run(specs)

    rows = []
    for circuit_index, (name, (reference_seed, _)) in enumerate(zip(names, seeds)):
        circuit = build_circuit(name)
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, input_probability),
            total_cycles=reference_cycles,
            lanes=reference_lanes,
            power_model=config.power_model,
            capacitance_model=config.capacitance_model,
            rng=reference_seed,
            backend=config.simulation_backend,
        )

        jobs = batch.results[
            circuit_index * runs_per_circuit : (circuit_index + 1) * runs_per_circuit
        ]
        intervals: list[int] = []
        sample_sizes: list[int] = []
        deviations: list[float] = []
        violations = 0
        for job in jobs:
            estimate = job.estimate  # raises with the job's error if it failed
            deviation = estimate.relative_error_to(reference.average_power_w)
            intervals.append(estimate.independence_interval)
            sample_sizes.append(estimate.sample_size)
            deviations.append(deviation)
            if deviation > config.max_relative_error:
                violations += 1

        rows.append(
            Table2Row(
                circuit=name,
                runs=runs_per_circuit,
                interval_min=min(intervals),
                interval_max=max(intervals),
                interval_avg=sum(intervals) / len(intervals),
                sample_size_avg=sum(sample_sizes) / len(sample_sizes),
                deviation_avg_pct=100.0 * sum(deviations) / len(deviations),
                violation_pct=100.0 * violations / runs_per_circuit,
            )
        )
    return Table2Result(rows=tuple(rows), runs_per_circuit=runs_per_circuit, config=config)


def format_table2(result: Table2Result) -> str:
    """Render the result in the paper's Table 2 layout."""
    table = TextTable(
        headers=["Circuit", "II_min", "II_max", "II_avg", "S_avg", "D_avg (%)", "Err (%)"],
        precision=2,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.interval_min,
                row.interval_max,
                row.interval_avg,
                row.sample_size_avg,
                row.deviation_avg_pct,
                row.violation_pct,
            ]
        )
    return table.render()
