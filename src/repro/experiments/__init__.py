"""Experiment harnesses that regenerate the paper's tables and figures.

Every experiment module exposes a ``run_*`` function returning a result
dataclass and a ``format_*`` function rendering it in the same row/column
layout as the paper:

* :mod:`repro.experiments.table1` — Table 1: per-circuit reference power,
  selected independence interval, DIPE estimate, sample size and CPU time.
* :mod:`repro.experiments.table2` — Table 2: repeated-run summary (interval
  spread, average sample size, average deviation).
* :mod:`repro.experiments.figure3` — Figure 3: runs-test z statistic versus
  trial interval length.
* :mod:`repro.experiments.ablation_stopping` — stopping-criterion comparison
  (order-statistic vs CLT vs Kolmogorov–Smirnov).
* :mod:`repro.experiments.ablation_baseline` — DIPE versus the
  consecutive-cycle and fixed-warm-up baselines (accuracy, coverage, cost).
* :mod:`repro.experiments.ablation_seqlen` — sensitivity of interval
  selection to the runs-test sequence length (the paper's choice of 320).
"""

from repro.experiments.ablation_baseline import (
    BaselineAblationResult,
    format_baseline_ablation,
    run_baseline_ablation,
)
from repro.experiments.ablation_seqlen import (
    SequenceLengthAblationResult,
    format_seqlen_ablation,
    run_seqlen_ablation,
)
from repro.experiments.ablation_stopping import (
    StoppingAblationResult,
    format_stopping_ablation,
    run_stopping_ablation,
)
from repro.experiments.figure3 import (
    Figure3Estimator,
    Figure3Point,
    Figure3Result,
    figure3_job,
    format_figure3,
    run_figure3,
)
from repro.experiments.table1 import (
    Table1Result,
    Table1Row,
    format_table1,
    run_table1,
    table1_jobs,
)
from repro.experiments.table2 import (
    Table2Result,
    Table2Row,
    format_table2,
    run_table2,
    table2_jobs,
)

__all__ = [
    "Table1Result",
    "Table1Row",
    "run_table1",
    "table1_jobs",
    "format_table1",
    "Table2Result",
    "Table2Row",
    "run_table2",
    "table2_jobs",
    "format_table2",
    "Figure3Estimator",
    "Figure3Point",
    "Figure3Result",
    "run_figure3",
    "figure3_job",
    "format_figure3",
    "StoppingAblationResult",
    "run_stopping_ablation",
    "format_stopping_ablation",
    "BaselineAblationResult",
    "run_baseline_ablation",
    "format_baseline_ablation",
    "SequenceLengthAblationResult",
    "run_seqlen_ablation",
    "format_seqlen_ablation",
]
