"""Ablation B: DIPE versus estimators that ignore or over-handle correlation.

The paper motivates DIPE by two failure modes of prior art:

* sampling power in consecutive clock cycles and pretending the sample is
  i.i.d. (classic Monte-Carlo estimators) — the confidence statement becomes
  optimistic because positive serial correlation shrinks the apparent
  variance; and
* inserting a pessimistic, fixed warm-up period before every sample
  (Chou & Roy) — statistically sound but wasteful whenever the circuit mixes
  faster than the pessimistic bound.

This ablation runs the three estimators repeatedly on small circuits whose
reference power is known very accurately and reports, for each method, the
average deviation, the fraction of runs whose reported confidence interval
actually contained the reference (empirical coverage, to be compared with the
nominal confidence), and the average number of simulated cycles (cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.iscas89 import build_circuit
from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource, child_rngs, spawn_rng
from repro.utils.tables import TextTable

DEFAULT_CIRCUITS = ("s298", "s344", "s386")


@dataclass(frozen=True)
class BaselineAblationRow:
    """Aggregated repeated-run statistics of one (circuit, method) pair."""

    circuit: str
    method: str
    runs: int
    mean_relative_error: float
    empirical_coverage: float
    nominal_confidence: float
    mean_sample_size: float
    mean_cycles: float


@dataclass(frozen=True)
class BaselineAblationResult:
    """All rows of the baseline ablation."""

    rows: tuple[BaselineAblationRow, ...]
    config: EstimationConfig

    def row_for(self, circuit: str, method: str) -> BaselineAblationRow:
        """Look up the row of one (circuit, method) pair."""
        for row in self.rows:
            if row.circuit == circuit and row.method == method:
                return row
        raise KeyError(f"no row for circuit {circuit!r} and method {method!r}")


def _make_estimator(method: str, circuit, config, rng, fixed_warmup_period: int):
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    if method == "dipe":
        return DipeEstimator(circuit, stimulus=stimulus, config=config, rng=rng)
    if method == "consecutive-mc":
        return ConsecutiveCycleEstimator(circuit, stimulus=stimulus, config=config, rng=rng)
    if method == "fixed-warmup":
        return FixedWarmupEstimator(
            circuit,
            stimulus=stimulus,
            config=config,
            rng=rng,
            warmup_period=fixed_warmup_period,
        )
    raise ValueError(f"unknown method {method!r}")


def run_baseline_ablation(
    circuit_names: Sequence[str] = DEFAULT_CIRCUITS,
    methods: Sequence[str] = ("dipe", "consecutive-mc", "fixed-warmup"),
    runs_per_method: int = 15,
    config: EstimationConfig | None = None,
    reference_cycles: int = 100_000,
    fixed_warmup_period: int = 50,
    seed: RandomSource = 2025,
) -> BaselineAblationResult:
    """Run the repeated-run comparison of DIPE against the baselines."""
    if runs_per_method < 1:
        raise ValueError("runs_per_method must be at least 1")
    config = config or EstimationConfig()
    master_rng = spawn_rng(seed)

    rows = []
    for name in circuit_names:
        circuit = build_circuit(name)
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, 0.5),
            total_cycles=reference_cycles,
            power_model=config.power_model,
            capacitance_model=config.capacitance_model,
            rng=int(master_rng.integers(0, 2**62)),
        )
        for method in methods:
            errors = []
            covered = 0
            sample_sizes = []
            cycles = []
            for run_rng in child_rngs(int(master_rng.integers(0, 2**62)), runs_per_method):
                estimator = _make_estimator(method, circuit, config, run_rng, fixed_warmup_period)
                estimate = estimator.estimate()
                errors.append(estimate.relative_error_to(reference.average_power_w))
                if estimate.lower_bound_w <= reference.average_power_w <= estimate.upper_bound_w:
                    covered += 1
                sample_sizes.append(estimate.sample_size)
                cycles.append(estimate.cycles_simulated)
            rows.append(
                BaselineAblationRow(
                    circuit=name,
                    method=method,
                    runs=runs_per_method,
                    mean_relative_error=sum(errors) / len(errors),
                    empirical_coverage=covered / runs_per_method,
                    nominal_confidence=config.confidence,
                    mean_sample_size=sum(sample_sizes) / len(sample_sizes),
                    mean_cycles=sum(cycles) / len(cycles),
                )
            )
    return BaselineAblationResult(rows=tuple(rows), config=config)


def format_baseline_ablation(result: BaselineAblationResult) -> str:
    """Render the ablation as an aligned text table."""
    table = TextTable(
        headers=[
            "Circuit",
            "Method",
            "Runs",
            "Mean err (%)",
            "Coverage",
            "Nominal",
            "Avg samples",
            "Avg cycles",
        ],
        precision=3,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.method,
                row.runs,
                100.0 * row.mean_relative_error,
                row.empirical_coverage,
                row.nominal_confidence,
                row.mean_sample_size,
                row.mean_cycles,
            ]
        )
    return table.render()
