"""Figure 3 of the paper: runs-test z statistic versus trial interval length.

The paper plots the z statistic of the runs test for circuit ``s1494`` over
trial intervals from 0 to 30 clock cycles with a power sequence of length
10,000: the statistic starts large (strong serial correlation at interval 0)
and decays below the acceptance threshold within a few cycles, illustrating
the phi-mixing behaviour the method relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.interval import z_statistic_profile
from repro.core.sampler import PowerSampler
from repro.stats.runs_test import critical_value
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class Figure3Point:
    """One point of the Figure 3 curve."""

    interval: int
    z_statistic: float
    accepted: bool


@dataclass(frozen=True)
class Figure3Result:
    """The full z-statistic profile plus the settings it was measured with."""

    circuit: str
    sequence_length: int
    significance_level: float
    acceptance_threshold: float
    points: tuple[Figure3Point, ...]

    def first_accepted_interval(self) -> int | None:
        """Smallest interval whose sequence passes the runs test (None if none)."""
        for point in self.points:
            if point.accepted:
                return point.interval
        return None

    def series(self) -> tuple[list[int], list[float]]:
        """Return ``(intervals, z_values)`` ready for plotting."""
        return (
            [point.interval for point in self.points],
            [point.z_statistic for point in self.points],
        )


def run_figure3(
    circuit_name: str = "s1494",
    max_interval: int = 30,
    sequence_length: int = 10_000,
    significance_level: float = 0.20,
    config: EstimationConfig | None = None,
    seed: RandomSource = 2025,
    input_probability: float = 0.5,
) -> Figure3Result:
    """Regenerate Figure 3 (z statistic as a function of the trial interval).

    The paper's plot uses ``s1494`` and a sequence length of 10,000; both are
    parameters here so quick versions can be produced in the benchmarks.
    """
    if max_interval < 0:
        raise ValueError("max_interval must be non-negative")
    config = config or EstimationConfig()
    circuit = build_circuit(circuit_name)
    sampler = PowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, input_probability),
        config,
        rng=seed,
    )
    sampler.prepare(config.warmup_cycles)
    profile = z_statistic_profile(
        sampler,
        max_interval=max_interval,
        sequence_length=sequence_length,
        significance_level=significance_level,
    )
    points = tuple(
        Figure3Point(interval=interval, z_statistic=abs(z), accepted=accepted)
        for interval, z, accepted in profile
    )
    return Figure3Result(
        circuit=circuit_name,
        sequence_length=sequence_length,
        significance_level=significance_level,
        acceptance_threshold=critical_value(significance_level),
        points=points,
    )


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 series as a table plus a crude ASCII plot."""
    table = TextTable(headers=["Interval", "|z|", "Accepted"], precision=2)
    for point in result.points:
        table.add_row([point.interval, point.z_statistic, "yes" if point.accepted else "no"])

    max_z = max((point.z_statistic for point in result.points), default=1.0)
    scale = 60.0 / max_z if max_z > 0 else 1.0
    plot_lines = [
        f"{point.interval:3d} | " + "#" * max(1, int(round(point.z_statistic * scale)))
        for point in result.points
    ]
    header = (
        f"Circuit {result.circuit}, sequence length {result.sequence_length}, "
        f"acceptance threshold |z| <= {result.acceptance_threshold:.3f}"
    )
    return header + "\n\n" + table.render() + "\n\n" + "\n".join(plot_lines)
