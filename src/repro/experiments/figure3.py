"""Figure 3 of the paper: runs-test z statistic versus trial interval length.

The paper plots the z statistic of the runs test for circuit ``s1494`` over
trial intervals from 0 to 30 clock cycles with a power sequence of length
10,000: the statistic starts large (strong serial correlation at interval 0)
and decays below the acceptance threshold within a few cycles, illustrating
the phi-mixing behaviour the method relies on.

The sweep is implemented as a registered estimator kind
(``"figure3-profile"``), so it participates in the job-oriented API: a sweep
is described by a serializable :class:`~repro.api.jobs.JobSpec`
(:func:`figure3_job`), can be batched by the
:class:`~repro.api.batch.BatchRunner`, and streams one
:class:`~repro.api.events.IntervalTrialEvent` per measured interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.api.events import (
    EstimateCompleted,
    IntervalTrialEvent,
    ProgressEvent,
    RunStarted,
)
from repro.api.jobs import JobSpec, StimulusSpec, register_result_type, run_job
from repro.api.protocol import StreamingEstimator
from repro.api.registry import register_estimator
from repro.circuits.program import as_compiled_circuit
from repro.core.config import EstimationConfig
from repro.core.sampler import PowerSampler
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.stats.randomness import runs_test_on_values
from repro.stats.runs_test import critical_value
from repro.stimulus.base import Stimulus
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class Figure3Point:
    """One point of the Figure 3 curve."""

    interval: int
    z_statistic: float
    accepted: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "z_statistic": self.z_statistic,
            "accepted": self.accepted,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Figure3Point":
        return cls(**data)


@dataclass(frozen=True)
class Figure3Result:
    """The full z-statistic profile plus the settings it was measured with."""

    circuit: str
    sequence_length: int
    significance_level: float
    acceptance_threshold: float
    points: tuple[Figure3Point, ...]

    def first_accepted_interval(self) -> int | None:
        """Smallest interval whose sequence passes the runs test (None if none)."""
        for point in self.points:
            if point.accepted:
                return point.interval
        return None

    def series(self) -> tuple[list[int], list[float]]:
        """Return ``(intervals, z_values)`` ready for plotting."""
        return (
            [point.interval for point in self.points],
            [point.z_statistic for point in self.points],
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "circuit": self.circuit,
            "sequence_length": self.sequence_length,
            "significance_level": self.significance_level,
            "acceptance_threshold": self.acceptance_threshold,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Figure3Result":
        return cls(
            circuit=data["circuit"],
            sequence_length=data["sequence_length"],
            significance_level=data["significance_level"],
            acceptance_threshold=data["acceptance_threshold"],
            points=tuple(Figure3Point.from_dict(point) for point in data["points"]),
        )


register_result_type("figure3-profile", Figure3Result)


@register_estimator("figure3-profile")
class Figure3Estimator(StreamingEstimator):
    """Estimator-protocol adapter for the Figure 3 z-statistic sweep.

    Speaks the same incremental protocol as the mean estimators — ``run()``
    yields a :class:`RunStarted`, one :class:`IntervalTrialEvent` per trial
    interval and an :class:`EstimateCompleted` whose ``estimate`` is the
    :class:`Figure3Result` — so sweeps can be dispatched through
    :func:`repro.api.run_job` and batched alongside power-estimation jobs.

    Parameters
    ----------
    circuit:
        Compiled circuit (or netlist) to sweep.
    stimulus / config / rng:
        As for :class:`~repro.core.dipe.DipeEstimator`.
    max_interval:
        Largest trial interval measured (paper: 30).
    sequence_length:
        Power-sequence length per interval (paper: 10,000).
    significance_level:
        Runs-test significance level; defaults to the configuration's value.
    """

    method = "figure3-profile"

    def __init__(
        self,
        circuit: CompiledCircuit | Netlist,
        stimulus: Stimulus | None = None,
        config: EstimationConfig | None = None,
        rng: RandomSource = None,
        max_interval: int = 30,
        sequence_length: int = 10_000,
        significance_level: float | None = None,
    ):
        if max_interval < 0:
            raise ValueError("max_interval must be non-negative")
        if sequence_length < 1:
            raise ValueError("sequence_length must be at least 1")
        circuit = as_compiled_circuit(circuit)
        self.circuit = circuit
        self.config = config or EstimationConfig()
        self.stimulus = stimulus or BernoulliStimulus(circuit.num_inputs, 0.5)
        self.max_interval = max_interval
        self.sequence_length = sequence_length
        self.significance_level = (
            self.config.significance_level if significance_level is None else significance_level
        )
        self.sampler = PowerSampler(circuit, self.stimulus, self.config, rng=rng)

    def run(self, resume_from=None) -> Iterator[ProgressEvent]:
        """Measure the profile incrementally, one interval per event."""
        if resume_from is not None:
            raise ValueError("the figure3-profile sweep does not support checkpoint resume")
        circuit_name = self.circuit.name
        yield RunStarted(
            circuit=circuit_name, method=self.method, samples_drawn=0, cycles_simulated=0
        )
        self.sampler.prepare(self.config.warmup_cycles)
        points: list[Figure3Point] = []
        for interval in range(self.max_interval + 1):
            sequence = self.sampler.collect_sequence(
                interval=interval, length=self.sequence_length
            )
            test = runs_test_on_values(sequence, significance_level=self.significance_level)
            points.append(
                Figure3Point(
                    interval=interval, z_statistic=abs(test.z_statistic), accepted=test.accepted
                )
            )
            yield IntervalTrialEvent(
                circuit=circuit_name,
                method=self.method,
                samples_drawn=len(points) * self.sequence_length,
                cycles_simulated=self.sampler.cycles_simulated,
                interval=interval,
                z_statistic=abs(test.z_statistic),
                accepted=test.accepted,
            )
        result = Figure3Result(
            circuit=circuit_name,
            sequence_length=self.sequence_length,
            significance_level=self.significance_level,
            acceptance_threshold=critical_value(self.significance_level),
            points=tuple(points),
        )
        yield EstimateCompleted(
            circuit=circuit_name,
            method=self.method,
            samples_drawn=len(points) * self.sequence_length,
            cycles_simulated=self.sampler.cycles_simulated,
            estimate=result,
        )

def figure3_job(
    circuit_name: str = "s1494",
    max_interval: int = 30,
    sequence_length: int = 10_000,
    significance_level: float = 0.20,
    config: EstimationConfig | None = None,
    seed: int = 2025,
    input_probability: float = 0.5,
) -> JobSpec:
    """Build the serializable :class:`JobSpec` describing a Figure 3 sweep."""
    return JobSpec(
        circuit=circuit_name,
        estimator="figure3-profile",
        stimulus=StimulusSpec.bernoulli(input_probability),
        config=config or EstimationConfig(),
        seed=int(seed),
        params={
            "max_interval": max_interval,
            "sequence_length": sequence_length,
            "significance_level": significance_level,
        },
        label=f"figure3:{circuit_name}",
    )


def run_figure3(
    circuit_name: str = "s1494",
    max_interval: int = 30,
    sequence_length: int = 10_000,
    significance_level: float = 0.20,
    config: EstimationConfig | None = None,
    seed: RandomSource = 2025,
    input_probability: float = 0.5,
) -> Figure3Result:
    """Regenerate Figure 3 (z statistic as a function of the trial interval).

    The paper's plot uses ``s1494`` and a sequence length of 10,000; both are
    parameters here so quick versions can be produced in the benchmarks.
    Integer seeds go through the serializable job path (:func:`figure3_job` +
    :func:`repro.api.run_job`); generator seeds fall back to direct
    construction since they cannot be serialized.
    """
    if isinstance(seed, (int, np.integer)):
        spec = figure3_job(
            circuit_name=circuit_name,
            max_interval=max_interval,
            sequence_length=sequence_length,
            significance_level=significance_level,
            config=config,
            seed=int(seed),
            input_probability=input_probability,
        )
        return run_job(spec).result
    from repro.circuits.iscas89 import build_circuit

    circuit = build_circuit(circuit_name)
    estimator = Figure3Estimator(
        circuit,
        stimulus=BernoulliStimulus(circuit.num_inputs, input_probability),
        config=config,
        rng=seed,
        max_interval=max_interval,
        sequence_length=sequence_length,
        significance_level=significance_level,
    )
    return estimator.estimate()


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 series as a table plus a crude ASCII plot."""
    from repro.utils.tables import TextTable

    table = TextTable(headers=["Interval", "|z|", "Accepted"], precision=2)
    for point in result.points:
        table.add_row([point.interval, point.z_statistic, "yes" if point.accepted else "no"])

    max_z = max((point.z_statistic for point in result.points), default=1.0)
    scale = 60.0 / max_z if max_z > 0 else 1.0
    plot_lines = [
        f"{point.interval:3d} | " + "#" * max(1, int(round(point.z_statistic * scale)))
        for point in result.points
    ]
    header = (
        f"Circuit {result.circuit}, sequence length {result.sequence_length}, "
        f"acceptance threshold |z| <= {result.acceptance_threshold:.3f}"
    )
    return header + "\n\n" + table.render() + "\n\n" + "\n".join(plot_lines)
