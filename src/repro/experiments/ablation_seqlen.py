"""Ablation C: sensitivity to the runs-test sequence length.

The paper argues the power-sequence length for the randomness test "should be
carefully selected": too short and the hypothesis-test outcome fluctuates,
too long and the interval search wastes simulation cycles; 320 is chosen
because "the gain in statistical stability of the test results is marginal if
it is any longer".  This ablation sweeps the sequence length and reports the
spread of the selected independence interval over repeated runs together with
the cycles spent in the selection procedure, making that trade-off visible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.interval import select_independence_interval
from repro.core.sampler import PowerSampler
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource, child_rngs, spawn_rng
from repro.utils.tables import TextTable

DEFAULT_SEQUENCE_LENGTHS = (80, 160, 320, 640, 1280)


@dataclass(frozen=True)
class SequenceLengthAblationRow:
    """Interval-selection statistics for one (circuit, sequence length) pair."""

    circuit: str
    sequence_length: int
    runs: int
    interval_min: int
    interval_max: int
    interval_avg: float
    interval_std: float
    mean_selection_cycles: float
    converged_fraction: float


@dataclass(frozen=True)
class SequenceLengthAblationResult:
    """All rows of the sequence-length ablation."""

    rows: tuple[SequenceLengthAblationRow, ...]
    config: EstimationConfig


def run_seqlen_ablation(
    circuit_names: Sequence[str] = ("s298", "s1494"),
    sequence_lengths: Sequence[int] = DEFAULT_SEQUENCE_LENGTHS,
    runs_per_setting: int = 20,
    config: EstimationConfig | None = None,
    seed: RandomSource = 2025,
) -> SequenceLengthAblationResult:
    """Sweep the runs-test sequence length and measure interval stability."""
    if runs_per_setting < 1:
        raise ValueError("runs_per_setting must be at least 1")
    config = config or EstimationConfig()
    master_rng = spawn_rng(seed)

    rows = []
    for name in circuit_names:
        circuit = build_circuit(name)
        for sequence_length in sequence_lengths:
            run_config = replace(config, randomness_sequence_length=sequence_length)
            intervals = []
            selection_cycles = []
            converged = 0
            for run_rng in child_rngs(int(master_rng.integers(0, 2**62)), runs_per_setting):
                sampler = PowerSampler(
                    circuit,
                    BernoulliStimulus(circuit.num_inputs, 0.5),
                    run_config,
                    rng=run_rng,
                )
                sampler.prepare(run_config.warmup_cycles)
                selection = select_independence_interval(sampler, run_config)
                intervals.append(selection.interval)
                selection_cycles.append(selection.cycles_simulated)
                if selection.converged:
                    converged += 1

            mean_interval = sum(intervals) / len(intervals)
            variance = sum((i - mean_interval) ** 2 for i in intervals) / len(intervals)
            rows.append(
                SequenceLengthAblationRow(
                    circuit=name,
                    sequence_length=sequence_length,
                    runs=runs_per_setting,
                    interval_min=min(intervals),
                    interval_max=max(intervals),
                    interval_avg=mean_interval,
                    interval_std=variance**0.5,
                    mean_selection_cycles=sum(selection_cycles) / len(selection_cycles),
                    converged_fraction=converged / runs_per_setting,
                )
            )
    return SequenceLengthAblationResult(rows=tuple(rows), config=config)


def format_seqlen_ablation(result: SequenceLengthAblationResult) -> str:
    """Render the ablation as an aligned text table."""
    table = TextTable(
        headers=[
            "Circuit",
            "Seq len",
            "II_min",
            "II_max",
            "II_avg",
            "II_std",
            "Select cycles",
            "Converged",
        ],
        precision=2,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.sequence_length,
                row.interval_min,
                row.interval_max,
                row.interval_avg,
                row.interval_std,
                row.mean_selection_cycles,
                row.converged_fraction,
            ]
        )
    return table.render()
