"""Ablation A: comparison of the three stopping criteria.

Section IV of the paper lists three possible stopping criteria — a parametric
CLT rule, a Kolmogorov–Smirnov rule and the order-statistics rule it adopts
"because it provides a good tradeoff between simulation accuracy and
efficiency".  This ablation quantifies that tradeoff on the benchmark
analogues: for each criterion it reports the sample size the criterion asked
for and the deviation of the resulting estimate from the long-simulation
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.tables import TextTable

DEFAULT_CRITERIA = ("order-statistic", "clt", "ks")
DEFAULT_CIRCUITS = ("s298", "s386", "s832", "s1494")


@dataclass(frozen=True)
class StoppingAblationRow:
    """Result of one (circuit, stopping criterion) pair."""

    circuit: str
    criterion: str
    sample_size: int
    estimate_mw: float
    reference_mw: float
    relative_error: float
    cycles_simulated: int
    accuracy_met: bool


@dataclass(frozen=True)
class StoppingAblationResult:
    """All rows of the stopping-criterion ablation."""

    rows: tuple[StoppingAblationRow, ...]
    config: EstimationConfig

    def rows_for(self, criterion: str) -> list[StoppingAblationRow]:
        """Rows produced with the given criterion."""
        return [row for row in self.rows if row.criterion == criterion]

    def mean_sample_size(self, criterion: str) -> float:
        """Average sample size required by the given criterion."""
        rows = self.rows_for(criterion)
        return sum(row.sample_size for row in rows) / len(rows) if rows else 0.0


def run_stopping_ablation(
    circuit_names: Sequence[str] = DEFAULT_CIRCUITS,
    criteria: Sequence[str] = DEFAULT_CRITERIA,
    config: EstimationConfig | None = None,
    reference_cycles: int = 50_000,
    seed: RandomSource = 2025,
) -> StoppingAblationResult:
    """Run every requested stopping criterion on every requested circuit."""
    config = config or EstimationConfig()
    master_rng = spawn_rng(seed)

    rows = []
    for name in circuit_names:
        circuit = build_circuit(name)
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, 0.5),
            total_cycles=reference_cycles,
            power_model=config.power_model,
            capacitance_model=config.capacitance_model,
            rng=int(master_rng.integers(0, 2**62)),
        )
        for criterion in criteria:
            run_config = replace(config, stopping_criterion=criterion)
            estimator = DipeEstimator(
                circuit,
                stimulus=BernoulliStimulus(circuit.num_inputs, 0.5),
                config=run_config,
                rng=int(master_rng.integers(0, 2**62)),
            )
            estimate = estimator.estimate()
            rows.append(
                StoppingAblationRow(
                    circuit=name,
                    criterion=criterion,
                    sample_size=estimate.sample_size,
                    estimate_mw=estimate.average_power_mw,
                    reference_mw=reference.average_power_mw,
                    relative_error=estimate.relative_error_to(reference.average_power_w),
                    cycles_simulated=estimate.cycles_simulated,
                    accuracy_met=estimate.accuracy_met,
                )
            )
    return StoppingAblationResult(rows=tuple(rows), config=config)


def format_stopping_ablation(result: StoppingAblationResult) -> str:
    """Render the ablation as an aligned text table."""
    table = TextTable(
        headers=[
            "Circuit", "Criterion", "Samples", "Estimate (mW)", "Ref (mW)", "Err (%)", "Cycles"
        ],
        precision=3,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.criterion,
                row.sample_size,
                row.estimate_mw,
                row.reference_mw,
                100.0 * row.relative_error,
                row.cycles_simulated,
            ]
        )
    return table.render()
