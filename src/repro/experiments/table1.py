"""Table 1 of the paper: power estimation results per benchmark circuit.

For every circuit the harness reports the long-simulation reference power
("SIM"), the independence interval chosen by the runs test ("I.I."), the DIPE
estimate, the sample size the stopping criterion required, and the CPU time.
Absolute milliwatt values differ from the paper (synthetic circuit analogues,
different capacitance calibration, Python instead of a C simulator on a
SPARC 20), but the shape of the table is the point: intervals of a few clock
cycles, estimates within the 5 % specification of the reference, and sample
sizes of a few hundred to a few thousand.

The harness is a :class:`~repro.api.jobs.JobSpec` producer:
:func:`table1_jobs` emits one serializable spec per circuit (deterministic
per-job seeds derived from the master seed) and :func:`run_table1` executes
them through the :class:`~repro.api.batch.BatchRunner` — pass ``workers=N``
to fan the circuits across processes; results are bit-identical to the
serial run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Sequence

from repro.api.batch import BatchRunner
from repro.api.jobs import JobSpec, StimulusSpec
from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, build_circuit
from repro.core.config import EstimationConfig
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import spawn_rng
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class Table1Row:
    """One circuit's row of Table 1."""

    circuit: str
    reference_power_mw: float
    independence_interval: int
    estimate_mw: float
    sample_size: int
    cpu_seconds: float
    relative_error: float
    accuracy_met: bool


@dataclass(frozen=True)
class Table1Result:
    """All rows of Table 1 plus the configuration they were produced with."""

    rows: tuple[Table1Row, ...]
    reference_cycles: int
    config: EstimationConfig

    def max_relative_error(self) -> float:
        """Largest deviation from the reference across all circuits."""
        return max(row.relative_error for row in self.rows) if self.rows else 0.0

    def mean_relative_error(self) -> float:
        """Mean deviation from the reference across all circuits."""
        if not self.rows:
            return 0.0
        return sum(row.relative_error for row in self.rows) / len(self.rows)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": [asdict(row) for row in self.rows],
            "reference_cycles": self.reference_cycles,
            "config": self.config.to_dict(),
        }


def _table1_seeds(seed, circuit_names: Sequence[str]) -> list[tuple[int, int]]:
    """Per-circuit ``(reference_seed, estimate_seed)`` pairs from the master seed.

    The draw order (reference before estimate, circuit by circuit) is part of
    the reproducibility contract: it matches the historical serial harness,
    so a given master seed keeps producing the same table.
    """
    master_rng = spawn_rng(seed)
    return [
        (int(master_rng.integers(0, 2**62)), int(master_rng.integers(0, 2**62)))
        for _ in circuit_names
    ]


def _table1_specs(
    names: Sequence[str],
    config: EstimationConfig,
    seeds: Sequence[tuple[int, int]],
    input_probability: float,
) -> tuple[JobSpec, ...]:
    return tuple(
        JobSpec(
            circuit=name,
            estimator="dipe",
            stimulus=StimulusSpec.bernoulli(input_probability),
            config=config,
            seed=estimate_seed,
            label=f"table1:{name}",
        )
        for name, (_, estimate_seed) in zip(names, seeds)
    )


def table1_jobs(
    circuit_names: Sequence[str] | None = None,
    config: EstimationConfig | None = None,
    seed=2025,
    input_probability: float = 0.5,
) -> tuple[JobSpec, ...]:
    """Emit the serializable DIPE JobSpecs behind Table 1 (one per circuit).

    The reference ("SIM") simulations are not jobs — :func:`run_table1` runs
    them alongside — but the estimate seeds here are exactly the seeds the
    full harness uses, so specs can also be executed standalone (e.g. via
    ``repro batch``) and compared against a full table run.
    """
    names = tuple(circuit_names) if circuit_names is not None else SMALL_CIRCUIT_NAMES
    config = config or EstimationConfig()
    return _table1_specs(names, config, _table1_seeds(seed, names), input_probability)


def run_table1(
    circuit_names: Sequence[str] | None = None,
    config: EstimationConfig | None = None,
    reference_cycles: int = 50_000,
    reference_lanes: int = 64,
    seed=2025,
    input_probability: float = 0.5,
    workers: int = 1,
) -> Table1Result:
    """Regenerate Table 1.

    Parameters
    ----------
    circuit_names:
        Benchmarks to include; defaults to the circuits small enough for a
        quick run (set to :data:`repro.circuits.iscas89.TABLE_CIRCUIT_NAMES`
        for the paper's full list).
    config:
        DIPE configuration; defaults to the paper's settings.
    reference_cycles / reference_lanes:
        Budget of the long-simulation reference estimate (the paper uses one
        million consecutive cycles; the ensemble equivalent here defaults to
        50,000 cycles across 64 lanes).
    seed:
        Master seed; each circuit derives its own independent stream.
    input_probability:
        Probability of 1 at every primary input (paper: 0.5).
    workers:
        Worker processes for the DIPE estimation jobs (results are identical
        for any worker count).
    """
    names = tuple(circuit_names) if circuit_names is not None else SMALL_CIRCUIT_NAMES
    config = config or EstimationConfig()
    seeds = _table1_seeds(seed, names)
    specs = _table1_specs(names, config, seeds, input_probability)
    batch = BatchRunner(workers=workers).run(specs)

    rows = []
    for name, (reference_seed, _), job in zip(names, seeds, batch.results):
        estimate = job.estimate  # raises with the job's error if it failed
        circuit = build_circuit(name)
        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, input_probability),
            total_cycles=reference_cycles,
            lanes=reference_lanes,
            power_model=config.power_model,
            capacitance_model=config.capacitance_model,
            rng=reference_seed,
            backend=config.simulation_backend,
        )
        rows.append(
            Table1Row(
                circuit=name,
                reference_power_mw=reference.average_power_mw,
                independence_interval=estimate.independence_interval,
                estimate_mw=estimate.average_power_mw,
                sample_size=estimate.sample_size,
                cpu_seconds=estimate.elapsed_seconds,
                relative_error=estimate.relative_error_to(reference.average_power_w),
                accuracy_met=estimate.accuracy_met,
            )
        )
    return Table1Result(rows=tuple(rows), reference_cycles=reference_cycles, config=config)


def format_table1(result: Table1Result) -> str:
    """Render the result in the paper's Table 1 layout."""
    table = TextTable(
        headers=["Circuit", "SIM (mW)", "I.I.", "p-bar (mW)", "Sample Size", "CPU (s)", "Err (%)"],
        precision=3,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.reference_power_mw,
                row.independence_interval,
                row.estimate_mw,
                row.sample_size,
                row.cpu_seconds,
                100.0 * row.relative_error,
            ]
        )
    return table.render()
