"""Table 1 of the paper: power estimation results per benchmark circuit.

For every circuit the harness reports the long-simulation reference power
("SIM"), the independence interval chosen by the runs test ("I.I."), the DIPE
estimate, the sample size the stopping criterion required, and the CPU time.
Absolute milliwatt values differ from the paper (synthetic circuit analogues,
different capacitance calibration, Python instead of a C simulator on a
SPARC 20), but the shape of the table is the point: intervals of a few clock
cycles, estimates within the 5 % specification of the reference, and sample
sizes of a few hundred to a few thousand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, build_circuit
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class Table1Row:
    """One circuit's row of Table 1."""

    circuit: str
    reference_power_mw: float
    independence_interval: int
    estimate_mw: float
    sample_size: int
    cpu_seconds: float
    relative_error: float
    accuracy_met: bool


@dataclass(frozen=True)
class Table1Result:
    """All rows of Table 1 plus the configuration they were produced with."""

    rows: tuple[Table1Row, ...]
    reference_cycles: int
    config: EstimationConfig

    def max_relative_error(self) -> float:
        """Largest deviation from the reference across all circuits."""
        return max(row.relative_error for row in self.rows) if self.rows else 0.0

    def mean_relative_error(self) -> float:
        """Mean deviation from the reference across all circuits."""
        if not self.rows:
            return 0.0
        return sum(row.relative_error for row in self.rows) / len(self.rows)


def run_table1(
    circuit_names: Sequence[str] | None = None,
    config: EstimationConfig | None = None,
    reference_cycles: int = 50_000,
    reference_lanes: int = 64,
    seed: RandomSource = 2025,
    input_probability: float = 0.5,
) -> Table1Result:
    """Regenerate Table 1.

    Parameters
    ----------
    circuit_names:
        Benchmarks to include; defaults to the circuits small enough for a
        quick run (set to :data:`repro.circuits.iscas89.TABLE_CIRCUIT_NAMES`
        for the paper's full list).
    config:
        DIPE configuration; defaults to the paper's settings.
    reference_cycles / reference_lanes:
        Budget of the long-simulation reference estimate (the paper uses one
        million consecutive cycles; the ensemble equivalent here defaults to
        50,000 cycles across 64 lanes).
    seed:
        Master seed; each circuit derives its own independent stream.
    input_probability:
        Probability of 1 at every primary input (paper: 0.5).
    """
    names = tuple(circuit_names) if circuit_names is not None else SMALL_CIRCUIT_NAMES
    config = config or EstimationConfig()
    master_rng = spawn_rng(seed)

    rows = []
    for name in names:
        circuit = build_circuit(name)
        reference_seed = int(master_rng.integers(0, 2**62))
        estimate_seed = int(master_rng.integers(0, 2**62))

        reference = estimate_reference_power(
            circuit,
            BernoulliStimulus(circuit.num_inputs, input_probability),
            total_cycles=reference_cycles,
            lanes=reference_lanes,
            power_model=config.power_model,
            capacitance_model=config.capacitance_model,
            rng=reference_seed,
            backend=config.simulation_backend,
        )
        estimator = DipeEstimator(
            circuit,
            stimulus=BernoulliStimulus(circuit.num_inputs, input_probability),
            config=config,
            rng=estimate_seed,
        )
        estimate = estimator.estimate()
        rows.append(
            Table1Row(
                circuit=name,
                reference_power_mw=reference.average_power_mw,
                independence_interval=estimate.independence_interval,
                estimate_mw=estimate.average_power_mw,
                sample_size=estimate.sample_size,
                cpu_seconds=estimate.elapsed_seconds,
                relative_error=estimate.relative_error_to(reference.average_power_w),
                accuracy_met=estimate.accuracy_met,
            )
        )
    return Table1Result(rows=tuple(rows), reference_cycles=reference_cycles, config=config)


def format_table1(result: Table1Result) -> str:
    """Render the result in the paper's Table 1 layout."""
    table = TextTable(
        headers=["Circuit", "SIM (mW)", "I.I.", "p-bar (mW)", "Sample Size", "CPU (s)", "Err (%)"],
        precision=3,
    )
    for row in result.rows:
        table.add_row(
            [
                row.circuit,
                row.reference_power_mw,
                row.independence_interval,
                row.estimate_mw,
                row.sample_size,
                row.cpu_seconds,
                100.0 * row.relative_error,
            ]
        )
    return table.render()
