#!/usr/bin/env python3
"""FSM ground truth: the exact approach the statistical method sidesteps.

Section III of the paper describes the "first approach" to sequential power
estimation: extract the state transition graph, solve the Chapman-Kolmogorov
equations for the stationary state probabilities, and average power over the
exact distribution.  It is exact but exponential in the number of latches —
which is why DIPE exists.  For small circuits we can afford it, and it makes
a perfect cross-check:

* the STG and its stationary distribution are computed for s27;
* the exact average power is compared against both the long-simulation
  reference and the DIPE estimate;
* the chain's mixing time is reported next to the independence interval the
  runs test picked, showing they tell the same story.

Run with::

    python examples/fsm_ground_truth.py
"""

from __future__ import annotations

from repro import DipeEstimator, EstimationConfig, estimate_reference_power, BernoulliStimulus
from repro.circuits.library import s27
from repro.fsm import (
    exact_average_power,
    extract_stg,
    mixing_time,
    reachable_states,
    stationary_distribution,
)
from repro.simulation.compiled import CompiledCircuit


def main() -> None:
    circuit = CompiledCircuit.from_netlist(s27())
    print(f"Circuit {circuit.name}: {circuit.num_gates} gates, {circuit.num_latches} flip-flops "
          f"-> {circuit.state_space_size()} states\n")

    # --- exact FSM analysis -------------------------------------------------
    stg = extract_stg(circuit, input_bit_probabilities=0.5)
    pi = stationary_distribution(stg.transition_matrix)
    reachable = reachable_states(stg, initial_state=0)
    chain_mixing = mixing_time(stg.transition_matrix, threshold=0.05)

    print("Stationary state probabilities (Chapman-Kolmogorov):")
    for state in range(stg.num_states):
        marker = "" if state in reachable else "   (unreachable from reset)"
        print(f"  state {state:0{circuit.num_latches}b} : {pi[state]:.4f}{marker}")
    print(f"Mixing time to within TV 0.05 of stationarity: {chain_mixing} cycles\n")

    exact = exact_average_power(circuit, 0.5)
    print(f"Exact average power (full enumeration)     : {exact * 1e3:.5f} mW")

    # --- simulation-based estimates ----------------------------------------
    reference = estimate_reference_power(
        circuit, BernoulliStimulus(circuit.num_inputs, 0.5), total_cycles=200_000, rng=1
    )
    print(f"Long-simulation reference ({reference.total_cycles} cycles)  : "
          f"{reference.average_power_mw:.5f} mW")

    estimate = DipeEstimator(circuit, config=EstimationConfig(), rng=2).estimate()
    print(f"DIPE statistical estimate                  : {estimate.average_power_mw:.5f} mW")
    print(f"  selected independence interval           : {estimate.independence_interval} cycles "
          f"(chain mixing time {chain_mixing})")
    print(f"  sample size                              : {estimate.sample_size}")
    print(f"  deviation from exact                     : "
          f"{100 * abs(estimate.average_power_w - exact) / exact:.2f} %")


if __name__ == "__main__":
    main()
