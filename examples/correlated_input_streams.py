#!/usr/bin/env python3
"""Correlated input streams: DIPE handles them with no extra modelling work.

The paper stresses that, unlike probabilistic techniques that must model
signal statistics explicitly, DIPE "does not make assumptions on input
pattern statistics": temporally or spatially correlated input streams flow
through exactly the same machinery, and the runs test automatically selects a
longer independence interval when the combined input+state process mixes more
slowly.

This example sweeps the temporal correlation of the primary inputs and shows
(a) how the selected independence interval reacts and (b) that the estimate
still tracks a long-simulation reference driven by the same streams.

Run with::

    python examples/correlated_input_streams.py
"""

from __future__ import annotations

from repro import (
    DipeEstimator,
    EstimationConfig,
    LagOneMarkovStimulus,
    SpatiallyCorrelatedStimulus,
    build_circuit,
    estimate_reference_power,
)
from repro.utils.tables import TextTable


def main() -> None:
    circuit = build_circuit("s298")
    config = EstimationConfig()

    table = TextTable(
        headers=["Input model", "I.I.", "Samples", "Estimate (mW)", "Reference (mW)", "Err (%)"],
        precision=3,
    )

    scenarios = [
        ("iid p=0.5 (paper setting)", lambda: LagOneMarkovStimulus(circuit.num_inputs, 0.5, 0.0)),
        ("Markov rho=0.5", lambda: LagOneMarkovStimulus(circuit.num_inputs, 0.5, 0.5)),
        ("Markov rho=0.9", lambda: LagOneMarkovStimulus(circuit.num_inputs, 0.5, 0.9)),
        ("spatial coupling=0.9", lambda: SpatiallyCorrelatedStimulus(circuit.num_inputs, 1, 0.9)),
    ]

    for label, make_stimulus in scenarios:
        reference = estimate_reference_power(
            circuit, make_stimulus(), total_cycles=80_000, rng=1
        )
        estimate = DipeEstimator(circuit, stimulus=make_stimulus(), config=config, rng=2).estimate()
        table.add_row(
            [
                label,
                estimate.independence_interval,
                estimate.sample_size,
                estimate.average_power_mw,
                reference.average_power_mw,
                100 * estimate.relative_error_to(reference.average_power_w),
            ]
        )

    print(f"Circuit {circuit.name}: effect of input-stream correlation on DIPE\n")
    print(table.render())
    print(
        "\nNote how stronger temporal correlation slows the mixing of the power"
        "\nprocess, so the runs test selects a longer independence interval —"
        "\nwhile the estimates keep tracking the matching reference simulation."
    )


if __name__ == "__main__":
    main()
