#!/usr/bin/env python3
"""Quickstart: estimate the average power of a sequential benchmark circuit.

This is the minimal end-to-end use of the library: build a circuit, run the
DIPE estimator with the paper's default settings (runs-test interval
selection, order-statistics stopping criterion, 5 % error at 0.99
confidence), and compare against a long-simulation reference.

Run with::

    python examples/quickstart.py [circuit-name]
"""

from __future__ import annotations

import sys

from repro import (
    BernoulliStimulus,
    EstimationConfig,
    build_circuit,
    estimate_average_power,
    estimate_reference_power,
    list_circuits,
)


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    if circuit_name not in list_circuits():
        raise SystemExit(
            f"unknown circuit {circuit_name!r}; available: {', '.join(list_circuits())}"
        )

    circuit = build_circuit(circuit_name)
    print(f"Circuit {circuit.name}: {circuit.num_gates} gates, "
          f"{circuit.num_latches} flip-flops, {circuit.num_inputs} inputs")

    # The paper's experimental setting: independent inputs with probability 0.5.
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    config = EstimationConfig()  # paper defaults: alpha=0.20, 5% error @ 0.99 confidence

    print("\nRunning DIPE (statistical estimation)...")
    estimate = estimate_average_power(circuit, stimulus=stimulus, config=config, rng=1)
    print(f"  average power       : {estimate.average_power_mw:.4f} mW")
    print(f"  99% interval        : [{estimate.lower_bound_w * 1e3:.4f}, "
          f"{estimate.upper_bound_w * 1e3:.4f}] mW")
    print(f"  independence interval: {estimate.independence_interval} clock cycles")
    print(f"  sample size          : {estimate.sample_size}")
    print(f"  simulated cycles     : {estimate.cycles_simulated}")
    print(f"  wall-clock time      : {estimate.elapsed_seconds:.2f} s")

    print("\nRunning long-simulation reference (the paper's 'SIM' column)...")
    reference = estimate_reference_power(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        total_cycles=100_000,
        rng=2,
    )
    error = estimate.relative_error_to(reference.average_power_w)
    print(f"  reference power      : {reference.average_power_mw:.4f} mW "
          f"({reference.total_cycles} cycles)")
    print(f"  relative error       : {100 * error:.2f} %  "
          f"(specification: {100 * config.max_relative_error:.0f} %)")


if __name__ == "__main__":
    main()
