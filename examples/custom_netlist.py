#!/usr/bin/env python3
"""Bring your own circuit: parse an ISCAS89-style .bench netlist and estimate it.

Users with access to the original ISCAS89 benchmark files (or any gate-level
design exported in the ``.bench`` format) can run the identical flow on them.
This example builds a small traffic-light-style controller inline, writes it
out, parses it back, validates it, lowers it **once** to a shared
:class:`~repro.circuits.program.CircuitProgram`, and runs both baseline
estimators and DIPE on the same program — every simulator any estimator
constructs reuses the cached lowering instead of rebuilding its tables.

Run with::

    python examples/custom_netlist.py
"""

from __future__ import annotations

from repro import (
    ConsecutiveCycleEstimator,
    DipeEstimator,
    EstimationConfig,
    estimate_reference_power,
    parse_bench,
    BernoulliStimulus,
)
from repro.circuits.program import CircuitProgram
from repro.netlist.validate import validate_netlist
from repro.simulation.compiled import CompiledCircuit
from repro.utils.tables import TextTable

# A small synchronous controller: a 2-bit state machine that advances when the
# SENSOR input is asserted and exposes a decoded one-hot output.
CONTROLLER_BENCH = """
# traffic-light-style controller
INPUT(SENSOR)
INPUT(RESET)
OUTPUT(GO)
OUTPUT(WAIT)

S0 = DFF(NS0)
S1 = DFF(NS1)

NRESET = NOT(RESET)
ADV    = AND(SENSOR, NRESET)
NS0T   = XOR(S0, ADV)
CARRY  = AND(S0, ADV)
NS1T   = XOR(S1, CARRY)
NS0    = AND(NS0T, NRESET)
NS1    = AND(NS1T, NRESET)

NGO0   = NOT(S0)
GO     = AND(NGO0, S1)
WAIT   = AND(S0, S1)
"""


def main() -> None:
    netlist = parse_bench(CONTROLLER_BENCH, name="controller")
    issues = validate_netlist(netlist)
    print(f"Parsed {netlist.name!r}: {netlist.num_gates} gates, {netlist.num_latches} flip-flops")
    for issue in issues:
        print(f"  validation: {issue}")

    circuit = CompiledCircuit.from_netlist(netlist)

    # Lower once: the program carries every table the engines need (level
    # groups, gather/fan-out tables, delay schedules, capacitance vectors).
    # All estimators below — and any simulator they construct, at any width —
    # share this one lowering; set REPRO_PROGRAM_CACHE=<dir> and a later
    # process deserializes it instead of recompiling.
    program = CircuitProgram.of(circuit)
    print(f"Program {program.key}: {program.stats()['levels']} logic levels, "
          f"gates/level {program.gates_per_level()}")

    stimulus = BernoulliStimulus(circuit.num_inputs, [0.7, 0.05])  # busy sensor, rare reset
    config = EstimationConfig()

    reference = estimate_reference_power(
        program, BernoulliStimulus(circuit.num_inputs, [0.7, 0.05]), total_cycles=100_000, rng=1
    )

    table = TextTable(
        headers=["Estimator", "Power (mW)", "Err vs ref (%)", "Samples", "Cycles"], precision=4
    )
    dipe = DipeEstimator(program, stimulus=stimulus, config=config, rng=2).estimate()
    consecutive = ConsecutiveCycleEstimator(
        program,
        stimulus=BernoulliStimulus(circuit.num_inputs, [0.7, 0.05]),
        config=config,
        rng=3,
    ).estimate()
    for estimate in (dipe, consecutive):
        table.add_row(
            [
                estimate.method,
                estimate.average_power_mw,
                100 * estimate.relative_error_to(reference.average_power_w),
                estimate.sample_size,
                estimate.cycles_simulated,
            ]
        )

    print(f"\nReference power ({reference.total_cycles} cycles): {reference.average_power_mw:.4f} mW\n")
    print(table.render())


if __name__ == "__main__":
    main()
