#!/usr/bin/env python3
"""Glitch power: zero-delay versus general-delay power measurement.

The paper's two-phase scheme uses cheap zero-delay simulation while crossing
the independence interval and a general-delay simulator for the cycles where
power is actually sampled, so that hazard (glitch) transitions contribute to
the estimate.  This example quantifies the difference on benchmark analogues:
the same DIPE flow is run once with the zero-delay power engine and once with
the event-driven engine under two delay models, and the glitch overhead is
reported per circuit.

Run with::

    python examples/glitch_power.py
"""

from __future__ import annotations

from repro import DipeEstimator, EstimationConfig, build_circuit
from repro.utils.tables import TextTable


def main() -> None:
    circuits = ("s27", "s298", "s344", "s386")
    functional_config = EstimationConfig(power_simulator="zero-delay")
    glitch_config = EstimationConfig(power_simulator="event-driven")

    table = TextTable(
        headers=["Circuit", "Zero-delay (mW)", "General-delay (mW)", "Glitch overhead (%)"],
        precision=4,
    )

    for name in circuits:
        circuit = build_circuit(name)
        functional = DipeEstimator(circuit, config=functional_config, rng=1).estimate()
        glitchy = DipeEstimator(circuit, config=glitch_config, rng=1).estimate()
        overhead = 100.0 * (glitchy.average_power_w / functional.average_power_w - 1.0)
        table.add_row(
            [name, functional.average_power_mw, glitchy.average_power_mw, overhead]
        )

    print("Functional (zero-delay) vs glitch-aware (event-driven) power estimates\n")
    print(table.render())
    print(
        "\nThe general-delay estimate is systematically higher because reconvergent"
        "\npaths with unequal arrival times produce hazard transitions that the"
        "\nzero-delay model cannot see; the statistical machinery is identical in"
        "\nboth runs — only the power engine for the sampled cycles changes."
    )


if __name__ == "__main__":
    main()
