#!/usr/bin/env python3
"""Reproduce Table 1 of the paper on a configurable set of benchmark circuits.

Prints the same columns as the paper's Table 1: the long-simulation reference
power (SIM), the selected independence interval (I.I.), the DIPE estimate,
the sample size and the CPU time.

Run with::

    python examples/reproduce_table1.py                # quick subset
    python examples/reproduce_table1.py --all          # all 24 circuits of the paper
    python examples/reproduce_table1.py s298 s1494     # explicit circuit list
"""

from __future__ import annotations

import argparse

from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, TABLE_CIRCUIT_NAMES
from repro.core.config import EstimationConfig
from repro.experiments.table1 import format_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("circuits", nargs="*", help="benchmark circuit names (default: quick subset)")
    parser.add_argument("--all", action="store_true", help="run all 24 circuits of the paper's tables")
    parser.add_argument(
        "--reference-cycles", type=int, default=50_000,
        help="cycles for the long-simulation reference (paper: 1,000,000)",
    )
    parser.add_argument("--seed", type=int, default=2025, help="master random seed")
    args = parser.parse_args()

    if args.all:
        names = TABLE_CIRCUIT_NAMES
    elif args.circuits:
        names = tuple(args.circuits)
    else:
        names = SMALL_CIRCUIT_NAMES

    config = EstimationConfig()  # the paper's settings
    print(f"Estimating {len(names)} circuits with alpha={config.significance_level}, "
          f"max error {config.max_relative_error:.0%} @ {config.confidence:.0%} confidence\n")

    result = run_table1(
        circuit_names=names,
        config=config,
        reference_cycles=args.reference_cycles,
        seed=args.seed,
    )
    print(format_table1(result))
    print(f"\nMean |error| vs reference : {100 * result.mean_relative_error():.2f} %")
    print(f"Max  |error| vs reference : {100 * result.max_relative_error():.2f} %")


if __name__ == "__main__":
    main()
