#!/usr/bin/env python3
"""Multi-chain glitch-power estimation through the job API.

``examples/glitch_power.py`` quantifies the glitch overhead with the scalar
single-chain flow.  This example runs the same glitch-aware estimation on the
vectorized multi-chain engine: every :class:`~repro.api.JobSpec` asks for the
event-driven power engine *and* a lock-step chain ensemble, so each sampled
cycle is re-simulated with general delays for all chains at once through the
vectorized time wheel.  One job additionally enables adaptive chain scaling
and prints the ``chains-resized`` progress events so the resize trajectory is
visible.

Run with::

    python examples/glitch_power_batch.py
"""

from __future__ import annotations

from repro.api import JobSpec, run_job
from repro.api.events import ChainsResized
from repro.core.config import EstimationConfig
from repro.utils.tables import TextTable


def main() -> None:
    circuits = ("s27", "s298", "s344", "s386")
    chains = 64

    table = TextTable(
        headers=["Circuit", "Zero-delay (mW)", "Event-driven (mW)",
                 "Glitch overhead (%)", "Sweeps"],
        precision=4,
    )

    for name in circuits:
        jobs = {
            engine: JobSpec(
                circuit=name,
                seed=1,
                label=f"{engine}:{name}",
                config=EstimationConfig(power_simulator=engine, num_chains=chains),
            )
            for engine in ("zero-delay", "event-driven")
        }
        functional = run_job(jobs["zero-delay"]).estimate
        glitchy = run_job(jobs["event-driven"]).estimate
        overhead = 100.0 * (glitchy.average_power_w / functional.average_power_w - 1.0)
        table.add_row(
            [
                name,
                functional.average_power_mw,
                glitchy.average_power_mw,
                overhead,
                glitchy.cycles_simulated,
            ]
        )

    print(f"Multi-chain ({chains} lock-step chains) glitch-aware estimation "
          f"via the job API\n")
    print(table.render())

    # Adaptive chain scaling: let the sampler pick the ensemble width from
    # the stopping criterion's running accuracy, and watch it resize.
    print("\nAdaptive chain scaling on s1494 (event-driven engine):")
    spec = JobSpec(
        circuit="s1494",
        seed=1,
        label="adaptive:s1494",
        config=EstimationConfig(
            power_simulator="event-driven",
            num_chains=8,
            adaptive_chains=True,
            max_chains=256,
        ),
    )

    def show_resizes(event) -> None:
        if isinstance(event, ChainsResized):
            print(
                f"  chains {event.previous_chains:>4} -> {event.num_chains:<4} "
                f"at {event.samples_drawn} samples "
                f"(relative half-width {event.relative_half_width:.3f})"
            )

    estimate = run_job(spec, progress=show_resizes).estimate
    print(
        f"  final: {estimate.average_power_mw:.4f} mW from "
        f"{estimate.sample_size} samples in {estimate.cycles_simulated} sweeps"
    )
    print(
        "\nThe event-driven estimates sit above the zero-delay ones because"
        "\nreconvergent paths with unequal arrival times produce hazard pulses"
        "\nthe zero-delay model cannot see; the multi-chain engine measures"
        "\nthose glitches for every chain in one vectorized time-wheel sweep."
    )


if __name__ == "__main__":
    main()
