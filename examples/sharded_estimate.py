#!/usr/bin/env python3
"""Process-sharded estimation: identical results, multi-core wall-clock.

The chain ensemble of a DIPE run can be split across worker processes with
``EstimationConfig(num_workers=W)``.  The sharded sampler keeps the merged
sample stream draw-for-draw identical to the in-process engine — the worker
count is purely an execution knob — which this example demonstrates by
running the same spec at 1 and 2 workers and comparing the estimates
bit-for-bit, while streaming the per-worker ``ShardProgress`` entries of the
sharded run.

Run with::

    python examples/sharded_estimate.py
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.api import JobSpec, run_job
from repro.api.events import SampleProgress
from repro.core.config import EstimationConfig


def main() -> None:
    config = EstimationConfig(
        num_chains=256,
        randomness_sequence_length=128,
        min_samples=256,
        check_interval=256,
        max_samples=20_000,
        warmup_cycles=64,
        max_independence_interval=16,
    )
    spec = JobSpec(circuit="s1494", seed=7, config=config, label="sharded-demo")

    def run(num_workers: int):
        sharded_spec = replace(
            spec, config=replace(spec.config, num_workers=num_workers)
        )
        shard_layouts = []

        def watch(event) -> None:
            if isinstance(event, SampleProgress) and event.shards:
                shard_layouts.append(
                    [(shard.worker, shard.num_chains) for shard in event.shards]
                )

        start = time.perf_counter()
        result = run_job(sharded_spec, progress=watch)
        elapsed = time.perf_counter() - start
        return result.estimate, elapsed, shard_layouts

    serial, serial_s, _ = run(1)
    sharded, sharded_s, layouts = run(2)

    print(f"1 worker : {serial.average_power_mw:.4f} mW, "
          f"{serial.sample_size} samples, {serial_s:.1f}s")
    print(f"2 workers: {sharded.average_power_mw:.4f} mW, "
          f"{sharded.sample_size} samples, {sharded_s:.1f}s")
    if layouts:
        print(f"shard layout (worker, chains): {layouts[-1]}")

    identical = (
        serial.samples_switched_capacitance_f == sharded.samples_switched_capacitance_f
    )
    print(f"sample streams bit-identical: {identical}")
    assert identical, "worker count must never change results"


if __name__ == "__main__":
    main()
